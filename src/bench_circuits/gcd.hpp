#ifndef GRAPHITI_BENCH_CIRCUITS_GCD_HPP
#define GRAPHITI_BENCH_CIRCUITS_GCD_HPP

/**
 * @file
 * The GCD example of section 2 (figures 2b and 2c).
 *
 * buildGcdInOrder() constructs the untagged sequential inner-loop
 * circuit a dynamic HLS tool produces for
 *
 *     do { int temp = b; b = a % b; a = temp; } while (b != 0);
 *
 * with graph inputs io0 = a, io1 = b and graph output io0 = gcd(a, b).
 * The loop is guarded by two Mux/Branch pairs (one per loop-carried
 * variable), the canonical fast-token-delivery shape the rewrites of
 * section 3 normalize.
 *
 * buildGcdOutOfOrder() constructs the tagged circuit of figure 2c
 * (single Merge/Branch pair around a Pure body, wrapped in a
 * Tagger/Untagger) — the shape the rewrite pipeline produces.
 */

#include "graph/expr_high.hpp"
#include "semantics/functions.hpp"

namespace graphiti::circuits {

/** Figure 2b: the sequential (in-order) GCD inner loop. */
ExprHigh buildGcdInOrder();

/**
 * Figure 2c: the tagged out-of-order GCD inner loop.
 *
 * Registers the loop-body function "gcd_body" in @p registry:
 * (a, b) -> ((b, a % b), b' != 0).
 *
 * @param num_tags tag count for the Tagger/Untagger region.
 */
ExprHigh buildGcdOutOfOrder(FnRegistry& registry, int num_tags = 4);

/** Register the "gcd_body" pure function without building a graph. */
void registerGcdBody(FnRegistry& registry);

/**
 * The normalized sequential loop (figure 3d lhs): one Mux, one Branch,
 * a Pure body and a Split — the shape the main loop rewrite matches.
 * Registers "gcd_body" in @p registry.
 */
ExprHigh buildGcdNormalizedLoop(FnRegistry& registry);

/**
 * A farm of @p copies independent in-order GCD loops, each with its
 * own I/O pair (inputs 2k, 2k+1; output k). Used to exercise the
 * rewriting pipeline on graphs with hundreds of nodes (the
 * scalability discussion of section 6.3).
 */
ExprHigh buildGcdFarm(int copies);

}  // namespace graphiti::circuits

#endif  // GRAPHITI_BENCH_CIRCUITS_GCD_HPP
