#include "guard/verdict_store.hpp"

#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "obs/scope.hpp"

namespace graphiti::guard {

obs::json::Value
VerdictStoreStats::toJson() const
{
    obs::json::Value out{obs::json::Object{}};
    out.set("entries", entries);
    out.set("hits", hits);
    out.set("misses", misses);
    out.set("evictions", evictions);
    out.set("corrupt_entries", corrupt_entries);
    return out;
}

VerdictStore::VerdictStore(VerdictStoreConfig config)
    : config_(std::move(config)),
      shards_(std::max<std::size_t>(config_.shards, 1))
{
    config_.shards = shards_.size();
}

std::size_t
VerdictStore::shardOf(std::uint64_t key) const
{
    // Top bits: the FNV key is uniform, and the low bits already pick
    // hash buckets inside the shard map.
    return (key >> 48) % shards_.size();
}

std::string
VerdictStore::shardPath(std::size_t index) const
{
    return config_.dir + "/verdicts-" + std::to_string(index) +
           ".json";
}

std::optional<VerificationVerdict>
VerdictStore::lookup(std::uint64_t key)
{
    Shard& shard = shards_[shardOf(key)];
    std::optional<VerificationVerdict> found;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            shard.lru.erase(it->second.lru_pos);
            shard.lru.push_front(key);
            it->second.lru_pos = shard.lru.begin();
            found = it->second.verdict;
        }
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (found)
        ++stats_.hits;
    else
        ++stats_.misses;
    return found;
}

void
VerdictStore::store(std::uint64_t key,
                    const VerificationVerdict& verdict)
{
    std::size_t index = shardOf(key);
    Shard& shard = shards_[index];
    std::size_t evicted = 0;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.entries.find(key);
        if (it != shard.entries.end()) {
            it->second.verdict = verdict;
            shard.lru.erase(it->second.lru_pos);
            shard.lru.push_front(key);
            it->second.lru_pos = shard.lru.begin();
        } else {
            shard.lru.push_front(key);
            shard.entries.emplace(
                key, Shard::Entry{verdict, shard.lru.begin()});
            while (config_.max_entries_per_shard > 0 &&
                   shard.entries.size() >
                       config_.max_entries_per_shard) {
                std::uint64_t coldest = shard.lru.back();
                shard.lru.pop_back();
                shard.entries.erase(coldest);
                ++evicted;
            }
        }
        if (!config_.dir.empty() && config_.persist_on_store)
            persistShardLocked(index);
    }
    if (evicted > 0) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.evictions += evicted;
        GRAPHITI_OBS_COUNT("guard.verify.store_evictions",
                           static_cast<std::int64_t>(evicted));
    }
}

obs::json::Value
VerdictStore::shardJsonLocked(const Shard& shard) const
{
    namespace json = obs::json;
    json::Value out{json::Object{}};
    out.set("version", 1);
    json::Value arr{json::Array{}};
    // Dump in LRU order (hottest first), so a bounded reload under a
    // smaller cap keeps the hottest entries.
    for (std::uint64_t key : shard.lru) {
        auto it = shard.entries.find(key);
        json::Value entry{json::Object{}};
        entry.set("key", formatCacheKey(key));
        entry.set("verdict", it->second.verdict.toJson());
        arr.push(std::move(entry));
    }
    out.set("entries", std::move(arr));
    return out;
}

void
VerdictStore::persistShardLocked(std::size_t index) const
{
    ::mkdir(config_.dir.c_str(), 0755);  // EEXIST is fine
    Result<bool> wrote =
        writeJsonAtomic(shardPath(index), shardJsonLocked(shards_[index]));
    if (!wrote.ok())
        GRAPHITI_OBS_COUNT("guard.verify.store_persist_errors", 1);
}

Result<std::size_t>
VerdictStore::load()
{
    if (config_.dir.empty())
        return std::size_t{0};
    std::size_t loaded = 0;
    std::size_t corrupt = 0;
    for (std::size_t index = 0; index < shards_.size(); ++index) {
        std::ifstream in(shardPath(index));
        if (!in)
            continue;  // missing shard file: empty shard
        std::ostringstream text;
        text << in.rdbuf();
        Result<obs::json::Value> parsed = obs::json::parse(text.str());
        if (!parsed.ok()) {
            ++corrupt;  // torn or foreign file: skip the whole shard
            continue;
        }
        const obs::json::Value* entries =
            parsed.value().find("entries");
        if (entries == nullptr || !entries->isArray()) {
            ++corrupt;
            continue;
        }
        Shard& shard = shards_[index];
        std::lock_guard<std::mutex> lock(shard.mutex);
        // File is hottest-first; iterate in reverse so push_front
        // rebuilds the same LRU order.
        const obs::json::Array& arr = entries->asArray();
        for (auto it = arr.rbegin(); it != arr.rend(); ++it) {
            const obs::json::Value* key = it->find("key");
            const obs::json::Value* verdict = it->find("verdict");
            Result<VerificationVerdict> decoded =
                (key != nullptr && key->isString() && verdict != nullptr)
                    ? verdictFromJson(*verdict)
                    : err("malformed entry");
            if (!decoded.ok()) {
                ++corrupt;
                continue;
            }
            std::uint64_t parsed_key = std::strtoull(
                key->asString().c_str(), nullptr, 16);
            if (shardOf(parsed_key) != index) {
                ++corrupt;  // entry filed under the wrong shard
                continue;
            }
            auto existing = shard.entries.find(parsed_key);
            if (existing != shard.entries.end())
                continue;  // in-memory entries win
            shard.lru.push_front(parsed_key);
            shard.entries.emplace(
                parsed_key,
                Shard::Entry{decoded.take(), shard.lru.begin()});
            ++loaded;
            while (config_.max_entries_per_shard > 0 &&
                   shard.entries.size() >
                       config_.max_entries_per_shard) {
                std::uint64_t coldest = shard.lru.back();
                shard.lru.pop_back();
                shard.entries.erase(coldest);
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.corrupt_entries += corrupt;
    }
    GRAPHITI_OBS_COUNT("guard.verify.cache_corrupt",
                       static_cast<std::int64_t>(corrupt));
    return loaded;
}

Result<bool>
VerdictStore::save() const
{
    if (config_.dir.empty())
        return false;
    ::mkdir(config_.dir.c_str(), 0755);
    for (std::size_t index = 0; index < shards_.size(); ++index) {
        const Shard& shard = shards_[index];
        std::lock_guard<std::mutex> lock(shard.mutex);
        Result<bool> wrote = writeJsonAtomic(shardPath(index),
                                             shardJsonLocked(shard));
        if (!wrote.ok())
            return wrote.error().context("verdict store save");
    }
    return true;
}

VerdictStoreStats
VerdictStore::stats() const
{
    VerdictStoreStats out;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        out = stats_;
    }
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.entries += shard.entries.size();
    }
    return out;
}

std::size_t
VerdictStore::approxBytes() const
{
    constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
    std::size_t bytes = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const auto& [key, entry] : shard.entries)
            bytes += sizeof(key) + verdictApproxBytes(entry.verdict) +
                     sizeof(entry.lru_pos) + kNodeOverhead;
        bytes += shard.entries.bucket_count() * sizeof(void*);
        // LRU list: one key + two links per node.
        bytes += shard.lru.size() *
                 (sizeof(std::uint64_t) + 2 * sizeof(void*));
    }
    return bytes;
}

}  // namespace graphiti::guard
