#include "guard/transaction.hpp"

#include <map>

#include "rewrite/catalog.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace graphiti::guard {

PostCheck
validatorPostCheck(ValidatorOptions options)
{
    // Reachability/cycle rules assume a whole circuit; the engine also
    // rewrites fragments (rule lhs graphs, test scaffolds), so the
    // post-check keeps to the rules that are fragment-safe. Callers
    // validating complete circuits pass their own options.
    options.check_token_flow = false;
    return [options](const ExprHigh& graph)
               -> std::optional<std::string> {
        ValidationReport report = validateCircuit(graph, options);
        if (report.ok())
            return std::nullopt;
        return report.firstError()->toString();
    };
}

namespace {

/** Default capture values, keyed by the attribute that captures. */
std::string
captureDefault(const std::string& attr_key)
{
    if (attr_key == "tags")
        return "4";
    if (attr_key == "out" || attr_key == "in")
        return "2";
    if (attr_key == "op")
        return "add";
    if (attr_key == "value")
        return "0";
    return "1";
}

/** Bind every "$x" capture in @p def to a plausible concrete value. */
std::map<std::string, std::string>
defaultCaptures(const RewriteDef& def)
{
    std::map<std::string, std::string> captures;
    auto scan = [&](const ExprHigh& side) {
        for (const NodeDecl& node : side.nodes())
            for (const auto& [key, value] : node.attrs)
                if (!value.empty() && value[0] == '$')
                    captures.emplace(value, captureDefault(key));
    };
    scan(def.lhs);
    scan(def.rhs);
    return captures;
}

/**
 * Build a well-formed host circuit around @p lhs: the fragment itself
 * plus a randomized buffer chain between each boundary port and a
 * dedicated graph input/output.
 */
ExprHigh
buildHost(const ExprHigh& lhs, Rng& rng)
{
    ExprHigh host;
    for (const NodeDecl& node : lhs.nodes())
        host.addNode(node.name, node.type, node.attrs);
    for (const Edge& e : lhs.edges())
        host.connect(e.src, e.dst);

    int counter = 0;
    auto chain_in = [&](std::size_t io, const PortRef& dst) {
        PortRef at = dst;
        std::size_t depth = rng.below(3);
        for (std::size_t i = 0; i < depth; ++i) {
            std::string name = "hostb" + std::to_string(counter++);
            host.addNode(name, "buffer");
            host.connect(PortRef{name, "out0"}, at);
            at = PortRef{name, "in0"};
        }
        host.bindInput(io, at);
    };
    auto chain_out = [&](std::size_t io, const PortRef& src) {
        PortRef at = src;
        std::size_t depth = rng.below(3);
        for (std::size_t i = 0; i < depth; ++i) {
            std::string name = "hostb" + std::to_string(counter++);
            host.addNode(name, "buffer");
            host.connect(at, PortRef{name, "in0"});
            at = PortRef{name, "out0"};
        }
        host.bindOutput(io, at);
    };
    for (std::size_t i = 0; i < lhs.inputs().size(); ++i)
        if (lhs.inputs()[i])
            chain_in(i, *lhs.inputs()[i]);
    for (std::size_t i = 0; i < lhs.outputs().size(); ++i)
        if (lhs.outputs()[i])
            chain_out(i, *lhs.outputs()[i]);
    return host;
}

}  // namespace

CatalogValidityReport
verifyCatalogValidity(std::uint64_t seed, std::size_t rounds_per_rule,
                     std::size_t threads)
{
    // Fragment-safe rule set, matching the pipeline's post-check.
    ValidatorOptions options;
    options.check_token_flow = false;

    // Each rule is an independent property check with its own derived
    // rng, so rules fan out across the pool; outcomes are merged in
    // catalog order, making the report identical at any thread count.
    std::vector<RewriteDef> defs = catalog::allRewrites();
    std::vector<RuleValidityOutcome> outcomes(defs.size());
    ThreadPool pool(ThreadPool::resolveThreads(threads));
    pool.parallelFor(defs.size(), [&](std::size_t i) {
        const RewriteDef& def = defs[i];
        RuleValidityOutcome& outcome = outcomes[i];
        outcome.rule = def.name;
        Rng rng(seed ^ ((i + 1) * 0x9e3779b97f4a7c15ULL));
        RewriteEngine engine;
        RewriteDef concrete =
            instantiateCaptures(def, defaultCaptures(def));

        for (std::size_t round = 0; round < rounds_per_rule; ++round) {
            ExprHigh host = buildHost(concrete.lhs, rng);
            if (!validateCircuit(host, options).ok())
                continue;  // unhostable fragment shape
            std::optional<RewriteMatch> match =
                matchRewriteOnce(host, concrete);
            if (!match)
                continue;
            Result<ExprHigh> applied =
                engine.applyAt(host, concrete, *match);
            if (!applied.ok())
                continue;  // inapplicable here (e.g. io-to-io wire)
            ++outcome.applications;
            ValidationReport after =
                validateCircuit(applied.value(), options);
            for (const Diagnostic& d : after.diagnostics())
                if (d.severity == Severity::Error)
                    outcome.violations.push_back(d.toString());
        }
        outcome.skipped = outcome.applications == 0;
    });

    CatalogValidityReport report;
    for (RuleValidityOutcome& outcome : outcomes) {
        if (!outcome.skipped)
            ++report.rules_checked;
        if (!outcome.violations.empty()) {
            report.all_ok = false;
            if (report.first_failure.empty())
                report.first_failure =
                    outcome.rule + ": " + outcome.violations.front();
        }
        report.rules.push_back(std::move(outcome));
    }
    return report;
}

}  // namespace graphiti::guard
