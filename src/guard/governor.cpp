#include "guard/governor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/scope.hpp"

namespace graphiti::guard {

const char*
toString(VerificationLevel level)
{
    switch (level) {
        case VerificationLevel::None: return "none";
        case VerificationLevel::TraceInclusion: return "trace-inclusion";
        case VerificationLevel::BoundedPartial: return "bounded-partial";
        case VerificationLevel::Full: return "full";
    }
    return "unknown";
}

obs::json::Value
VerificationVerdict::toJson() const
{
    namespace json = obs::json;
    json::Value out{json::Object{}};
    out.set("level", guard::toString(level));
    out.set("ok", ok);
    out.set("refines", refines);
    if (!degradation_reason.empty())
        out.set("degradation_reason", degradation_reason);
    if (!counterexample.empty())
        out.set("counterexample", counterexample);
    if (level == VerificationLevel::Full ||
        level == VerificationLevel::BoundedPartial) {
        json::Value game{json::Object{}};
        game.set("impl_states", report.impl_states);
        game.set("spec_states", report.spec_states);
        game.set("reachable_pairs", report.reachable_pairs);
        game.set("fixpoint_iterations", report.fixpoint_iterations);
        out.set("game", std::move(game));
    }
    if (level == VerificationLevel::TraceInclusion)
        out.set("trace_walks_run", trace_walks_run);
    return out;
}

Governor::Governor(VerificationBudget budget) : budget_(budget)
{
    if (budget_.deadline_seconds > 0)
        stop_ = StopToken::withDeadline(budget_.deadline_seconds);
}

Governor::Governor(VerificationBudget budget, StopToken external)
    : Governor(budget)
{
    if (external.armed())
        stop_ = std::move(external);
}

namespace {

std::string
renderTrace(const IoTrace& trace)
{
    std::ostringstream os;
    for (const IoEvent& ev : trace)
        os << "  " << ev.toString() << "\n";
    return os.str();
}

}  // namespace

VerificationVerdict
Governor::verify(const DenotedModule& impl, const DenotedModule& spec,
                 const InputDomain& domain,
                 const std::vector<Token>& input_pool) const
{
    GRAPHITI_OBS_TIMER(obs_timer, "guard.verify_seconds");
    VerificationVerdict verdict;
    std::ostringstream why;

#if GRAPHITI_OBS_ENABLED
    auto verify_start = std::chrono::steady_clock::now();
#endif
    // Mark a rung/phase transition on the job's progress probe (and
    // refresh the deadline headroom). Observation only — the ladder's
    // control flow never reads the probe.
    auto obs_rung = [&](obs::VerifyPhase phase, const char* rung) {
#if GRAPHITI_OBS_ENABLED
        if (obs::Scope* scope = obs::current()) {
            if (obs::VerifyProbe* probe = scope->verifyProbe()) {
                probe->beginPhase(phase, rung);
                if (budget_.deadline_seconds > 0) {
                    double elapsed =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            verify_start)
                            .count();
                    probe->setDeadlineRemaining(std::max(
                        0.0, budget_.deadline_seconds - elapsed));
                }
            }
        }
#else
        (void)phase;
        (void)rung;
#endif
    };
    // Roll a winning rung's high-water bytes into the scope gauges.
    auto obs_peaks = [&](std::size_t explore_bytes,
                         std::size_t game_bytes) {
#if GRAPHITI_OBS_ENABLED
        GRAPHITI_OBS_GAUGE_MAX("guard.verify.peak_bytes.explore",
                               explore_bytes);
        GRAPHITI_OBS_GAUGE_MAX("guard.verify.peak_bytes.game",
                               game_bytes);
        GRAPHITI_OBS_GAUGE_MAX("guard.verify.peak_bytes.total",
                               explore_bytes + game_bytes);
        GRAPHITI_OBS_VPROBE(notePeakBytes(explore_bytes + game_bytes));
#else
        (void)explore_bytes;
        (void)game_bytes;
#endif
    };

    // Rung 1: full exploration + exact game.
    if (budget_.max_states == 0) {
        why << "full check skipped (max_states = 0)";
    } else {
        ExplorationLimits limits;
        limits.max_states = budget_.max_states;
        limits.input_budget = budget_.input_budget;
        limits.threads = budget_.threads;
        limits.spill_bytes = budget_.spill_bytes;
        limits.stop = stop_;
        obs_rung(obs::VerifyPhase::Explore, "full");
        Result<StateSpace> impl_space =
            StateSpace::explore(impl, domain, limits);
        Result<StateSpace> spec_space =
            impl_space.ok() ? StateSpace::explore(spec, domain, limits)
                            : err("skipped");
        if (impl_space.ok() && spec_space.ok()) {
            obs_rung(obs::VerifyPhase::Game, "full");
            Result<RefinementReport> played = checkRefinementOnSpaces(
                impl_space.value(), spec_space.value(),
                /*optimistic_frontier=*/false, stop_,
                budget_.threads);
            if (played.ok()) {
                verdict.level = VerificationLevel::Full;
                verdict.report = played.take();
                verdict.refines = verdict.report.refines;
                verdict.ok = verdict.refines;
                verdict.counterexample = verdict.report.counterexample;
                verdict.explore_peak_bytes =
                    impl_space.value().peakBytes() +
                    spec_space.value().peakBytes();
                obs_peaks(verdict.explore_peak_bytes,
                          verdict.report.peak_bytes);
                GRAPHITI_OBS_COUNT("guard.verify.full", 1);
                return verdict;
            }
            why << "full game: " << played.error().message;
        } else if (!impl_space.ok()) {
            why << "full explore (impl): "
                << impl_space.error().message;
        } else {
            why << "full explore (spec): "
                << spec_space.error().message;
        }
    }

    // Rung 2: memory-bounded partial exploration + optimistic game.
    // A counterexample here is genuine; a pass only means "none within
    // the explored bound".
    if (budget_.partial_max_states == 0) {
        why << "; partial check skipped (partial_max_states = 0)";
    } else {
        ExplorationLimits limits;
        limits.max_states = budget_.partial_max_states;
        limits.input_budget = budget_.input_budget;
        limits.threads = budget_.threads;
        limits.spill_bytes = budget_.spill_bytes;
        limits.stop = stop_;
        obs_rung(obs::VerifyPhase::Explore, "bounded-partial");
        Result<StateSpace> impl_space =
            StateSpace::explorePartial(impl, domain, limits);
        Result<StateSpace> spec_space =
            impl_space.ok()
                ? StateSpace::explorePartial(spec, domain, limits)
                : err("skipped");
        if (impl_space.ok() && spec_space.ok()) {
            obs_rung(obs::VerifyPhase::Game, "bounded-partial");
            Result<RefinementReport> played = checkRefinementOnSpaces(
                impl_space.value(), spec_space.value(),
                /*optimistic_frontier=*/true, stop_,
                budget_.threads);
            if (played.ok()) {
                verdict.level = VerificationLevel::BoundedPartial;
                verdict.report = played.take();
                verdict.refines = false;  // bounded verdict, not a proof
                verdict.ok = verdict.report.refines;
                verdict.counterexample = verdict.report.counterexample;
                verdict.degradation_reason = why.str();
                verdict.explore_peak_bytes =
                    impl_space.value().peakBytes() +
                    spec_space.value().peakBytes();
                obs_peaks(verdict.explore_peak_bytes,
                          verdict.report.peak_bytes);
                GRAPHITI_OBS_COUNT("guard.verify.bounded_partial", 1);
                return verdict;
            }
            why << "; partial game: " << played.error().message;
        } else if (!impl_space.ok()) {
            why << "; partial explore (impl): "
                << impl_space.error().message;
        } else {
            why << "; partial explore (spec): "
                << spec_space.error().message;
        }
    }

    // Rung 3: seeded randomized trace-inclusion testing. Every walk
    // derives its own rng from (seed, walk index), so the walks fan
    // out across the pool independently; the per-walk outcomes are
    // then scanned in walk order, replaying the sequential control
    // flow — lowest failing walk wins — so the verdict is identical
    // at any thread count.
    {
        obs_rung(obs::VerifyPhase::TraceWalks, "trace-inclusion");
        // Replaying one linear trace is cheap; when the exhaustive
        // rungs were skipped (caps of 0) fall back to a cap that still
        // lets the walk run.
        std::size_t replay_cap =
            std::max({budget_.max_states, budget_.partial_max_states,
                      std::size_t{100000}});
        struct Walk
        {
            enum class Outcome : std::uint8_t
            {
                Cancelled,
                Pass,
                Fail,
                Error,
            };
            Outcome outcome = Outcome::Cancelled;
            std::string error;
            IoTrace trace;
        };
        std::vector<Walk> results(budget_.trace_walks);
        ThreadPool pool(ThreadPool::resolveThreads(budget_.threads));
        pool.parallelFor(results.size(), [&](std::size_t w) {
            if (stop_.stopRequested())
                return;  // stays Cancelled
            Rng rng(budget_.seed ^
                    ((w + 1) * 0x9e3779b97f4a7c15ULL));
            IoTrace trace =
                randomTrace(impl, input_pool, rng, budget_.trace);
            Result<bool> admitted =
                admitsTrace(spec, trace, replay_cap);
            if (!admitted.ok()) {
                results[w].outcome = Walk::Outcome::Error;
                results[w].error = admitted.error().message;
            } else if (admitted.value()) {
                results[w].outcome = Walk::Outcome::Pass;
            } else {
                results[w].outcome = Walk::Outcome::Fail;
                results[w].trace = std::move(trace);
            }
        });
        std::size_t walks = 0;
        for (std::size_t w = 0; w < results.size(); ++w) {
            Walk& r = results[w];
            if (r.outcome == Walk::Outcome::Cancelled) {
                why << "; trace walks: cancelled (" << stop_.reason()
                    << ")";
                break;
            }
            if (r.outcome == Walk::Outcome::Error) {
                why << "; trace walk " << w << ": " << r.error;
                break;
            }
            ++walks;
            if (r.outcome == Walk::Outcome::Fail) {
                verdict.level = VerificationLevel::TraceInclusion;
                verdict.ok = false;
                verdict.trace_walks_run = walks;
                verdict.degradation_reason = why.str();
                verdict.counterexample =
                    "impl trace the spec cannot replay:\n" +
                    renderTrace(r.trace);
                GRAPHITI_OBS_COUNT("guard.verify.trace_failures", 1);
                return verdict;
            }
        }
        if (walks > 0) {
            verdict.level = VerificationLevel::TraceInclusion;
            verdict.ok = true;
            verdict.trace_walks_run = walks;
            verdict.degradation_reason = why.str();
            GRAPHITI_OBS_COUNT("guard.verify.trace_inclusion", 1);
            return verdict;
        }
    }

    verdict.level = VerificationLevel::None;
    verdict.ok = false;
    verdict.degradation_reason = why.str();
    GRAPHITI_OBS_COUNT("guard.verify.none", 1);
    return verdict;
}

VerificationVerdict
Governor::verifyGraphs(const ExprHigh& impl, const ExprHigh& spec,
                       const Environment& env,
                       const std::vector<Token>& tokens) const
{
    auto fail = [](const std::string& reason) {
        VerificationVerdict verdict;
        verdict.level = VerificationLevel::None;
        verdict.degradation_reason = reason;
        return verdict;
    };
    Result<ExprLow> impl_low = lowerToExprLow(impl);
    if (!impl_low.ok())
        return fail("lower impl: " + impl_low.error().message);
    Result<ExprLow> spec_low = lowerToExprLow(spec);
    if (!spec_low.ok())
        return fail("lower spec: " + spec_low.error().message);
    Result<DenotedModule> impl_mod =
        DenotedModule::denote(impl_low.value(), env);
    if (!impl_mod.ok())
        return fail("denote impl: " + impl_mod.error().message);
    Result<DenotedModule> spec_mod =
        DenotedModule::denote(spec_low.value(), env);
    if (!spec_mod.ok())
        return fail("denote spec: " + spec_mod.error().message);
    return verify(impl_mod.value(), spec_mod.value(),
                  InputDomain::uniform(impl_mod.value(), tokens),
                  tokens);
}

}  // namespace graphiti::guard
