#ifndef GRAPHITI_GUARD_TRANSACTION_HPP
#define GRAPHITI_GUARD_TRANSACTION_HPP

/**
 * @file
 * Transactional rewriting: the glue between the structural validator
 * and the rewrite engine's snapshot/rollback hook.
 *
 * Rewrite application never mutates its input graph, so a transaction
 * is naturally copy-validate-commit: the engine builds a candidate,
 * the validator lints it, and a veto discards the candidate while the
 * pre-rewrite graph lives on untouched. validatorPostCheck() packages
 * the validator as a RewriteEngine post-check; runOooPipeline and the
 * Compiler install it so a buggy or hostile rule can never corrupt
 * pipeline state.
 *
 * verifyCatalogValidity() is the property test behind that promise:
 * for every catalog rule it builds a randomized well-formed host
 * around the rule's own lhs, applies the rule, and checks validity is
 * preserved.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "guard/validator.hpp"
#include "rewrite/engine.hpp"

namespace graphiti::guard {

/**
 * A post-check that vetoes any application whose result fails the
 * structural validator. Only error-severity findings veto; the veto
 * reason is the first error's rendering. The type check is included;
 * reachability rules are skipped by default because rewrites operate
 * on fragments of larger graphs in tests.
 */
PostCheck validatorPostCheck(ValidatorOptions options = {});

/** Per-rule outcome of the catalog validity sweep. */
struct RuleValidityOutcome
{
    std::string rule;
    /** Randomized hosts the rule was applied on. */
    std::size_t applications = 0;
    /** Hosts skipped because the instantiated lhs makes no
     * self-contained valid circuit (wire rewrites etc.). */
    bool skipped = false;
    /** Validator findings introduced by the rule (empty = preserved). */
    std::vector<std::string> violations;
};

/** Outcome of the whole sweep. */
struct CatalogValidityReport
{
    std::vector<RuleValidityOutcome> rules;
    bool all_ok = true;
    std::string first_failure;
    std::size_t rules_checked = 0;
};

/**
 * Property test: every catalog rule preserves structural validity on
 * randomized host graphs. Deterministic for a fixed @p seed: each
 * rule derives its own rng from (seed, rule index), so the sweep can
 * fan rules out across @p threads worker lanes (1 = sequential, 0 =
 * hardware concurrency) without changing the report.
 */
CatalogValidityReport verifyCatalogValidity(std::uint64_t seed,
                                            std::size_t rounds_per_rule = 4,
                                            std::size_t threads = 1);

}  // namespace graphiti::guard

#endif  // GRAPHITI_GUARD_TRANSACTION_HPP
