#include "guard/diagnostics.hpp"

#include <sstream>

namespace graphiti::guard {

const char*
toString(Severity severity)
{
    switch (severity) {
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "unknown";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << guard::toString(severity) << " [" << rule << "]";
    if (!component.empty())
        os << " " << component;
    os << ": " << message;
    return os.str();
}

obs::json::Value
Diagnostic::toJson() const
{
    namespace json = obs::json;
    json::Value out{json::Object{}};
    out.set("severity", guard::toString(severity));
    out.set("rule", rule);
    if (!component.empty())
        out.set("component", component);
    out.set("message", message);
    return out;
}

std::size_t
ValidationReport::errorCount() const
{
    std::size_t count = 0;
    for (const Diagnostic& d : diagnostics_)
        if (d.severity == Severity::Error)
            ++count;
    return count;
}

bool
ValidationReport::hasRule(const std::string& rule) const
{
    for (const Diagnostic& d : diagnostics_)
        if (d.rule == rule)
            return true;
    return false;
}

const Diagnostic*
ValidationReport::firstError() const
{
    for (const Diagnostic& d : diagnostics_)
        if (d.severity == Severity::Error)
            return &d;
    return nullptr;
}

std::string
ValidationReport::render() const
{
    std::ostringstream os;
    for (const Diagnostic& d : diagnostics_)
        os << d.toString() << "\n";
    return os.str();
}

obs::json::Value
ValidationReport::toJson() const
{
    namespace json = obs::json;
    json::Value out{json::Object{}};
    out.set("errors", errorCount());
    out.set("warnings", diagnostics_.size() - errorCount());
    json::Value arr{json::Array{}};
    for (const Diagnostic& d : diagnostics_)
        arr.push(d.toJson());
    out.set("diagnostics", std::move(arr));
    return out;
}

}  // namespace graphiti::guard
