#include "guard/verify_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dot/dot.hpp"
#include "obs/scope.hpp"

namespace graphiti::guard {

namespace {

std::uint64_t
fnv1a64(std::uint64_t h, const std::string& s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1a64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1a64Double(std::uint64_t h, double d)
{
    // Doubles hash via a fixed decimal rendering, so the key does not
    // depend on in-memory bit patterns of equal-printing values.
    std::ostringstream os;
    os << d;
    return fnv1a64(h, os.str());
}

VerificationLevel
levelFromString(const std::string& name)
{
    if (name == "full")
        return VerificationLevel::Full;
    if (name == "bounded-partial")
        return VerificationLevel::BoundedPartial;
    if (name == "trace-inclusion")
        return VerificationLevel::TraceInclusion;
    return VerificationLevel::None;
}

std::string
fieldString(const obs::json::Value& v, const char* key)
{
    const obs::json::Value* f = v.find(key);
    return (f != nullptr && f->isString()) ? f->asString() : "";
}

std::size_t
fieldCount(const obs::json::Value& v, const char* key)
{
    const obs::json::Value* f = v.find(key);
    return (f != nullptr && f->isNumber())
               ? static_cast<std::size_t>(f->asNumber())
               : 0;
}

}  // namespace

std::uint64_t
verificationCacheKey(const ExprHigh& transformed,
                     const ExprHigh& original,
                     const VerificationBudget& budget,
                     const std::vector<Token>& tokens)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a64(h, printDot(transformed));
    h = fnv1a64(h, printDot(original));
    h = fnv1a64Double(h, budget.deadline_seconds);
    h = fnv1a64(h, budget.max_states);
    h = fnv1a64(h, budget.partial_max_states);
    h = fnv1a64(h, budget.input_budget);
    h = fnv1a64(h, budget.trace_walks);
    h = fnv1a64(h, budget.trace.max_steps);
    h = fnv1a64Double(h, budget.trace.input_bias);
    h = fnv1a64(h, budget.trace.max_inputs);
    h = fnv1a64(h, budget.seed);
    // budget.threads and budget.spill_bytes deliberately excluded:
    // verdicts are thread-count independent by construction, and the
    // frontier spill tier is pure memory policy — the explored space
    // is byte-identical with or without it.
    h = fnv1a64(h, tokens.size());
    for (const Token& token : tokens)
        h = fnv1a64(h, token.toString());
    return h;
}

std::string
formatCacheKey(std::uint64_t key)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

bool
isCacheable(const VerificationBudget& budget)
{
    return budget.deadline_seconds == 0.0;
}

std::size_t
verdictApproxBytes(const VerificationVerdict& verdict)
{
    return sizeof(VerificationVerdict) +
           verdict.degradation_reason.size() +
           verdict.counterexample.size() +
           verdict.report.counterexample.size();
}

Result<VerificationVerdict>
verdictFromJson(const obs::json::Value& v)
{
    if (!v.isObject())
        return err("verdict JSON is not an object");
    const obs::json::Value* level = v.find("level");
    const obs::json::Value* ok = v.find("ok");
    if (level == nullptr || !level->isString() || ok == nullptr ||
        !ok->isBool())
        return err("verdict JSON lacks level/ok");
    VerificationVerdict verdict;
    verdict.level = levelFromString(level->asString());
    verdict.ok = ok->asBool();
    const obs::json::Value* refines = v.find("refines");
    verdict.refines = refines != nullptr && refines->isBool() &&
                      refines->asBool();
    verdict.degradation_reason = fieldString(v, "degradation_reason");
    verdict.counterexample = fieldString(v, "counterexample");
    if (const obs::json::Value* game = v.find("game")) {
        verdict.report.impl_states = fieldCount(*game, "impl_states");
        verdict.report.spec_states = fieldCount(*game, "spec_states");
        verdict.report.reachable_pairs =
            fieldCount(*game, "reachable_pairs");
        verdict.report.fixpoint_iterations =
            fieldCount(*game, "fixpoint_iterations");
        // toJson does not serialize the game-side duplicates; restore
        // them consistently with how the compiler consumes verdicts.
        verdict.report.refines = verdict.ok;
        verdict.report.counterexample = verdict.counterexample;
    }
    verdict.trace_walks_run = fieldCount(v, "trace_walks_run");
    return verdict;
}

std::optional<VerificationVerdict>
VerifyCache::lookup(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
VerifyCache::store(std::uint64_t key, const VerificationVerdict& verdict)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key] = verdict;
}

Result<bool>
VerifyCache::loadFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return false;  // a missing cache file is an empty cache
    std::ostringstream text;
    text << in.rdbuf();
    Result<obs::json::Value> parsed = obs::json::parse(text.str());
    std::size_t corrupt = 0;
    bool loaded_any = false;
    if (parsed.ok()) {
        const obs::json::Value* entries =
            parsed.value().find("entries");
        if (entries != nullptr && entries->isArray()) {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const obs::json::Value& entry : entries->asArray()) {
                const obs::json::Value* key = entry.find("key");
                const obs::json::Value* verdict = entry.find("verdict");
                Result<VerificationVerdict> decoded =
                    (key != nullptr && key->isString() &&
                     verdict != nullptr)
                        ? verdictFromJson(*verdict)
                        : err("malformed entry");
                if (!decoded.ok()) {
                    ++corrupt;  // skip the entry, keep the rest
                    continue;
                }
                std::uint64_t parsed_key = std::strtoull(
                    key->asString().c_str(), nullptr, 16);
                // In-memory entries win: they are at least as fresh.
                entries_.emplace(parsed_key, decoded.take());
                loaded_any = true;
            }
        } else {
            ++corrupt;  // parsed, but not a cache document
        }
    } else {
        ++corrupt;  // truncated or otherwise unparseable: empty cache
    }
    if (corrupt > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        corrupt_entries_ += corrupt;
    }
    GRAPHITI_OBS_COUNT("guard.verify.cache_corrupt",
                       static_cast<std::int64_t>(corrupt));
    return loaded_any;
}

Result<bool>
writeJsonAtomic(const std::string& path, const obs::json::Value& value)
{
    // The write-temp-then-rename discipline lives in obs::json now so
    // the flight recorder (which cannot depend on guard) shares it.
    return obs::json::writeFileAtomic(path, value);
}

Result<bool>
VerifyCache::saveFile(const std::string& path) const
{
    namespace json = obs::json;
    json::Value out{json::Object{}};
    out.set("version", 1);
    json::Value arr{json::Array{}};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Emit entries in key order: unordered_map iteration depends
        // on insertion history, and cache files should be
        // byte-reproducible for identical content (diffable, and the
        // obs tests compare snapshots textually).
        std::vector<std::uint64_t> keys;
        keys.reserve(entries_.size());
        for (const auto& [key, verdict] : entries_)
            keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        for (std::uint64_t key : keys) {
            json::Value entry{json::Object{}};
            entry.set("key", formatCacheKey(key));
            entry.set("verdict", entries_.at(key).toJson());
            arr.push(std::move(entry));
        }
    }
    out.set("entries", std::move(arr));
    return writeJsonAtomic(path, out);
}

std::size_t
VerifyCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
VerifyCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
VerifyCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t
VerifyCache::corruptEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return corrupt_entries_;
}

std::size_t
VerifyCache::approxBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
    std::size_t bytes = 0;
    for (const auto& [key, verdict] : entries_)
        bytes += sizeof(key) + verdictApproxBytes(verdict) +
                 kNodeOverhead;
    bytes += entries_.bucket_count() * sizeof(void*);
    return bytes;
}

}  // namespace graphiti::guard
