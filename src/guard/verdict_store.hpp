#ifndef GRAPHITI_GUARD_VERDICT_STORE_HPP
#define GRAPHITI_GUARD_VERDICT_STORE_HPP

/**
 * @file
 * The served verdict store: the per-Compiler VerifyCache promoted to
 * a sharded, LRU-bounded, crash-safe map shared across requests
 * (docs/service.md).
 *
 * Sharding: the top bits of the (already uniform) FNV-1a cache key
 * pick a shard; each shard has its own mutex, so concurrent jobs on
 * different keys never contend. Bounding: each shard keeps an LRU
 * list and evicts the coldest entry past its cap, so a daemon serving
 * millions of distinct circuits stays within a fixed memory budget.
 *
 * Crash safety: with a persistence directory configured, every
 * store() rewrites the owning shard's file via write-to-temp +
 * rename(2) — atomic on POSIX — so a SIGKILL at any instant leaves
 * either the previous complete file or the new complete file, never a
 * torn one. A verdict is "committed" exactly when store() returns.
 * Loading tolerates corruption: an unparseable shard file or a
 * malformed entry is skipped and counted (`guard.verify.cache_corrupt`),
 * never fatal — a half-written frame of a crashed foreign writer must
 * not take the daemon down.
 */

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "guard/verify_cache.hpp"

namespace graphiti::guard {

/** Shape of one VerdictStore. */
struct VerdictStoreConfig
{
    /** Persistence directory; empty = memory-only. Created lazily. */
    std::string dir;
    /** Shard count (clamped to >= 1). More shards = less lock
     * contention and smaller rewrite units. */
    std::size_t shards = 8;
    /** LRU cap per shard; 0 = unbounded. */
    std::size_t max_entries_per_shard = 1024;
    /** Persist the owning shard on every store (write-through). Off,
     * verdicts only reach disk on an explicit save(). */
    bool persist_on_store = true;
};

/** Counters of one store; see VerdictStore::stats. */
struct VerdictStoreStats
{
    std::size_t entries = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t corrupt_entries = 0;

    obs::json::Value toJson() const;
};

/** Sharded, LRU-bounded, crash-safe verdict store.
 *
 * lookup/store/approxBytes are virtual so the sandbox tier can stand
 * in a proxy: an isolated worker's Compiler talks to a subclass that
 * forwards over the worker socketpair, keeping every real store write
 * in the daemon parent where a dying child cannot tear it. */
class VerdictStore
{
  public:
    explicit VerdictStore(VerdictStoreConfig config = {});
    virtual ~VerdictStore() = default;

    /** Cached verdict for @p key; refreshes its LRU position and
     * counts a hit or a miss. */
    virtual std::optional<VerificationVerdict> lookup(std::uint64_t key);

    /**
     * Commit @p verdict under @p key (last store wins), evicting the
     * shard's coldest entry past the cap. With persistence on, the
     * shard file is atomically rewritten before returning — the
     * verdict survives a SIGKILL from here on.
     */
    virtual void store(std::uint64_t key,
                       const VerificationVerdict& verdict);

    /**
     * Load every shard file from the configured directory.
     * Corruption-tolerant: bad files/entries are skipped and counted.
     * Returns the number of entries loaded.
     */
    Result<std::size_t> load();

    /** Persist every shard now (also happens per-store when
     * persist_on_store). */
    Result<bool> save() const;

    VerdictStoreStats stats() const;
    const VerdictStoreConfig& config() const { return config_; }

    /** Size-based byte estimate of all shards' verdicts + LRU lists
     * (resource accounting only). */
    virtual std::size_t approxBytes() const;

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        /** Most-recent first; entries hold iterators into this. */
        std::list<std::uint64_t> lru;
        struct Entry
        {
            VerificationVerdict verdict;
            std::list<std::uint64_t>::iterator lru_pos;
        };
        std::unordered_map<std::uint64_t, Entry> entries;
    };

    std::size_t shardOf(std::uint64_t key) const;
    std::string shardPath(std::size_t index) const;
    /** Serialize one shard; caller holds its mutex. */
    obs::json::Value shardJsonLocked(const Shard& shard) const;
    /** Persist one shard; caller holds its mutex. */
    void persistShardLocked(std::size_t index) const;

    VerdictStoreConfig config_;
    std::vector<Shard> shards_;
    mutable std::mutex stats_mutex_;
    mutable VerdictStoreStats stats_;
};

}  // namespace graphiti::guard

#endif  // GRAPHITI_GUARD_VERDICT_STORE_HPP
