#ifndef GRAPHITI_GUARD_VERIFY_CACHE_HPP
#define GRAPHITI_GUARD_VERIFY_CACHE_HPP

/**
 * @file
 * Memoization of governed verification verdicts.
 *
 * A governed verdict with deadline_seconds == 0 is a pure function of
 * (transformed circuit, original circuit, budget, token domain): the
 * ladder is driven by deterministic state caps and seeds, and thread
 * count never changes the result (docs/parallelism.md). The cache
 * keys verdicts by a canonical structural hash of exactly those
 * inputs, so recompiling an unchanged circuit skips exploration
 * entirely. Deadline-governed verdicts are wall-clock dependent and
 * are never cached.
 *
 * Caches are in-process (Compiler holds one per instance) and can
 * optionally round-trip through a JSON file so verdicts survive
 * across runs; corrupt or missing files are treated as empty.
 */

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/expr_high.hpp"
#include "guard/governor.hpp"
#include "support/token.hpp"

namespace graphiti::guard {

/**
 * Canonical cache key: FNV-1a 64 over the printed circuits (printDot
 * is a canonical rendering — round-trips parseDot), every
 * verdict-relevant budget field, and the token domain.
 * VerificationBudget::threads is deliberately excluded: thread count
 * never changes a verdict.
 */
std::uint64_t verificationCacheKey(const ExprHigh& transformed,
                                   const ExprHigh& original,
                                   const VerificationBudget& budget,
                                   const std::vector<Token>& tokens);

/** @p key rendered the way reports and cache files spell it. */
std::string formatCacheKey(std::uint64_t key);

/** Rebuild a verdict from VerificationVerdict::toJson output. */
Result<VerificationVerdict> verdictFromJson(const obs::json::Value& v);

/** True when a verdict under @p budget may be memoized (no wall-clock
 * deadline — the verdict is deterministic). */
bool isCacheable(const VerificationBudget& budget);

/** Thread-safe in-process verdict cache with optional JSON persistence. */
class VerifyCache
{
  public:
    /** Cached verdict for @p key; counts a hit or a miss. */
    std::optional<VerificationVerdict> lookup(std::uint64_t key);

    /** Memoize @p verdict under @p key (last store wins). */
    void store(std::uint64_t key, const VerificationVerdict& verdict);

    /**
     * Merge entries from a cache file written by saveFile. A missing
     * file is an empty cache (returns false); a malformed one is an
     * error. In-memory entries win over file entries.
     */
    Result<bool> loadFile(const std::string& path);

    /** Write all entries to @p path as JSON. */
    Result<bool> saveFile(const std::string& path) const;

    std::size_t size() const;
    std::size_t hits() const;
    std::size_t misses() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, VerificationVerdict> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

}  // namespace graphiti::guard

#endif  // GRAPHITI_GUARD_VERIFY_CACHE_HPP
