#ifndef GRAPHITI_GUARD_VERIFY_CACHE_HPP
#define GRAPHITI_GUARD_VERIFY_CACHE_HPP

/**
 * @file
 * Memoization of governed verification verdicts.
 *
 * A governed verdict with deadline_seconds == 0 is a pure function of
 * (transformed circuit, original circuit, budget, token domain): the
 * ladder is driven by deterministic state caps and seeds, and thread
 * count never changes the result (docs/parallelism.md). The cache
 * keys verdicts by a canonical structural hash of exactly those
 * inputs, so recompiling an unchanged circuit skips exploration
 * entirely. Deadline-governed verdicts are wall-clock dependent and
 * are never cached.
 *
 * Caches are in-process (Compiler holds one per instance) and can
 * optionally round-trip through a JSON file so verdicts survive
 * across runs; corrupt or missing files are treated as empty.
 */

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/expr_high.hpp"
#include "guard/governor.hpp"
#include "support/token.hpp"

namespace graphiti::guard {

/**
 * Canonical cache key: FNV-1a 64 over the printed circuits (printDot
 * is a canonical rendering — round-trips parseDot), every
 * verdict-relevant budget field, and the token domain.
 * VerificationBudget::threads is deliberately excluded: thread count
 * never changes a verdict.
 */
std::uint64_t verificationCacheKey(const ExprHigh& transformed,
                                   const ExprHigh& original,
                                   const VerificationBudget& budget,
                                   const std::vector<Token>& tokens);

/** @p key rendered the way reports and cache files spell it. */
std::string formatCacheKey(std::uint64_t key);

/** Rebuild a verdict from VerificationVerdict::toJson output. */
Result<VerificationVerdict> verdictFromJson(const obs::json::Value& v);

/** True when a verdict under @p budget may be memoized (no wall-clock
 * deadline — the verdict is deterministic). */
bool isCacheable(const VerificationBudget& budget);

/** Size-based byte estimate of one verdict (strings deep, capacity
 * slack ignored). Shared by the cache/store accounting below. */
std::size_t verdictApproxBytes(const VerificationVerdict& verdict);

/** Thread-safe in-process verdict cache with optional JSON persistence. */
class VerifyCache
{
  public:
    /** Cached verdict for @p key; counts a hit or a miss. */
    std::optional<VerificationVerdict> lookup(std::uint64_t key);

    /** Memoize @p verdict under @p key (last store wins). */
    void store(std::uint64_t key, const VerificationVerdict& verdict);

    /**
     * Merge entries from a cache file written by saveFile. A missing
     * file is an empty cache (returns false). Corruption-tolerant: a
     * truncated or malformed file, and individual malformed entries,
     * are skipped (counted in corruptEntries() and the
     * `guard.verify.cache_corrupt` metric) instead of failing the
     * whole load — a torn write must never take the cache down.
     * In-memory entries win over file entries.
     */
    Result<bool> loadFile(const std::string& path);

    /** Write all entries to @p path as JSON, via a temp file and an
     * atomic rename, so a crash mid-save never leaves a torn file. */
    Result<bool> saveFile(const std::string& path) const;

    std::size_t size() const;
    std::size_t hits() const;
    std::size_t misses() const;
    /** Malformed files/entries skipped by loadFile so far. */
    std::size_t corruptEntries() const;
    /** Size-based byte estimate of all memoized verdicts (resource
     * accounting only — docs/verification_observability.md). */
    std::size_t approxBytes() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, VerificationVerdict> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t corrupt_entries_ = 0;
};

/**
 * Write @p value to @p path crash-safely: dump to `<path>.tmp`, then
 * rename over the target. rename(2) is atomic on POSIX, so readers
 * (and a post-crash reload) see either the old file or the complete
 * new one, never a torn mix. Shared by VerifyCache and VerdictStore.
 */
Result<bool> writeJsonAtomic(const std::string& path,
                             const obs::json::Value& value);

}  // namespace graphiti::guard

#endif  // GRAPHITI_GUARD_VERIFY_CACHE_HPP
