#ifndef GRAPHITI_GUARD_GOVERNOR_HPP
#define GRAPHITI_GUARD_GOVERNOR_HPP

/**
 * @file
 * Resource-governed verification: deadline + state-budget tokens and
 * an explicit degradation ladder.
 *
 * Bounded refinement checking is exact but can blow past any memory
 * or time budget on large instantiations. Instead of hanging or
 * aborting the whole compilation, the Governor walks a ladder and
 * reports the rung it reached *honestly*:
 *
 *   Full           exhaustive exploration + exact simulation game
 *   BoundedPartial memory-bounded explorePartial + optimistic game
 *                  ("no counterexample within the explored bound")
 *   TraceInclusion seeded randomized trace-inclusion testing
 *   None           nothing could run (the reason says why)
 *
 * Counterexamples found on any rung are genuine violations; a pass on
 * a degraded rung is weaker assurance, never silently presented as a
 * proof. With deadline_seconds == 0 the ladder is driven purely by
 * deterministic state budgets, so the verdict is byte-identical for a
 * fixed seed/budget — the property the guard tests pin down.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "refine/refinement.hpp"
#include "refine/trace.hpp"
#include "support/cancel.hpp"

namespace graphiti::guard {

/** The assurance actually achieved by a governed verification. */
enum class VerificationLevel
{
    None,            ///< no check could run
    TraceInclusion,  ///< randomized trace-inclusion testing only
    BoundedPartial,  ///< bounded check on a partial state space
    Full,            ///< exact check on the full bounded instantiation
};

const char* toString(VerificationLevel level);

/** Resource budget of one governed verification. */
struct VerificationBudget
{
    /**
     * Wall-clock deadline for the whole ladder; 0 disables the clock
     * (state budgets alone govern, keeping verdicts deterministic).
     */
    double deadline_seconds = 0.0;
    /** Full-exploration state cap (rung 1), per side; 0 skips the
     * full check entirely. Default raised with the compact state
     * encoding: bytes/state dropped, so the same memory now buys
     * more states. */
    std::size_t max_states = 500000;
    /** Partial-exploration state cap (rung 2), per side — the memory
     * budget of the degraded check; 0 skips the rung. */
    std::size_t partial_max_states = 50000;
    /** Input tokens consumed along any explored execution. */
    std::size_t input_budget = 3;
    /** Random walks of the trace-inclusion rung; 0 skips the rung. */
    std::size_t trace_walks = 32;
    /** Shape of each walk. */
    TraceGenOptions trace;
    /** Seed of the trace-inclusion rung (deterministic). */
    std::uint64_t seed = 0x677561726471ULL;
    /**
     * Worker lanes for exploration, the simulation game and the trace
     * walks (1 = sequential, 0 = hardware concurrency). Verdicts are
     * byte-identical at any thread count: exploration merges in
     * canonical order and each trace walk derives its own seed from
     * (seed, walk index).
     */
    std::size_t threads = 1;
    /**
     * Frontier spill cap per exploration (ExplorationLimits::
     * spill_bytes): a parked BoundedPartial frontier larger than this
     * parks its cold rows on disk instead of pinning them in RAM;
     * 0 disables spilling. Memory policy only — verdicts are
     * byte-identical with or without it, so (like threads) it is
     * excluded from the verify-cache key.
     */
    std::size_t spill_bytes = 0;
};

/** The honest outcome of a governed verification. */
struct VerificationVerdict
{
    VerificationLevel level = VerificationLevel::None;
    /** No violation found at `level` (false when a counterexample was
     * found, or when nothing could run). */
    bool ok = false;
    /** Exact refinement proven on the bounded instantiation — true
     * only at VerificationLevel::Full. */
    bool refines = false;
    /** Why the ladder descended below Full; empty at Full. */
    std::string degradation_reason;
    /** Genuine violation witness; empty when ok. */
    std::string counterexample;
    /** Game statistics (rungs Full/BoundedPartial). */
    RefinementReport report;
    /** Walks completed (rung TraceInclusion). */
    std::size_t trace_walks_run = 0;
    /**
     * High-water byte estimate of the winning rung's explorations
     * (both spaces plus their dedup indexes). Resource accounting
     * only: deliberately NOT part of toJson() — cached verdicts
     * round-trip through that JSON and golden tests compare it
     * byte-for-byte — so a cache hit honestly reports 0 (no
     * exploration ran). 0 when observability is compiled out.
     */
    std::size_t explore_peak_bytes = 0;

    /** Deterministic summary: no wall-clock content, so two runs with
     * the same seed/budget dump byte-identical JSON. */
    obs::json::Value toJson() const;
};

/** The resource governor. */
class Governor
{
  public:
    explicit Governor(VerificationBudget budget);

    /**
     * A governor whose phases additionally poll @p external — an
     * armed caller-owned token (job deadline, client disconnect,
     * fair-share preemption in the served daemon). When @p external
     * is armed it becomes the governor's token outright, so the
     * caller controls both deadline and explicit cancellation;
     * unarmed, this is the single-argument constructor.
     */
    Governor(VerificationBudget budget, StopToken external);

    /** The cancellation token phases poll; armed with the deadline
     * when one was configured. Share it with SimConfig::stop or
     * ExplorationLimits::stop to govern external phases too. */
    const StopToken& token() const { return stop_; }

    /** Request early cancellation of everything the token governs. */
    void cancel(const std::string& reason) { stop_.requestStop(reason); }

    /**
     * Run the ladder for impl ⊑ spec under @p domain. @p input_pool
     * feeds the trace-inclusion rung (tokens drawn at random inputs).
     */
    VerificationVerdict verify(const DenotedModule& impl,
                               const DenotedModule& spec,
                               const InputDomain& domain,
                               const std::vector<Token>& input_pool) const;

    /** Lower + denote two graphs in @p env, then verify with a
     * uniform domain over @p tokens. */
    VerificationVerdict verifyGraphs(const ExprHigh& impl,
                                     const ExprHigh& spec,
                                     const Environment& env,
                                     const std::vector<Token>& tokens) const;

  private:
    VerificationBudget budget_;
    StopToken stop_;
};

}  // namespace graphiti::guard

#endif  // GRAPHITI_GUARD_GOVERNOR_HPP
