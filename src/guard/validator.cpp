#include "guard/validator.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "graph/signatures.hpp"
#include "graph/typecheck.hpp"
#include "obs/scope.hpp"

namespace graphiti::guard {

namespace {

/** Per-node signature info gathered by the structural pass. */
struct NodeInfo
{
    const NodeDecl* decl = nullptr;
    Signature sig;
    bool sig_ok = false;
};

bool
hasPort(const std::vector<std::string>& ports, const std::string& name)
{
    return std::find(ports.begin(), ports.end(), name) != ports.end();
}

/** Component types that can introduce a token into a cycle (an init
 * emits its initial value; mux/merge/tagger pull from outside the
 * cycle). A cycle containing none of these can never start. */
bool
breaksCycle(const std::string& type)
{
    return type == "init" || type == "mux" || type == "merge" ||
           type == "tagger";
}

class Validator
{
  public:
    Validator(const ExprHigh& graph, const ValidatorOptions& options)
        : graph_(graph), options_(options)
    {
    }

    ValidationReport
    run()
    {
        structural();
        // The deeper passes assume per-node signatures and a sane
        // wiring table; skip them when the structure is already
        // broken (their findings would be noise).
        if (report_.errorCount() == 0) {
            if (options_.check_types)
                types();
            if (options_.check_token_flow) {
                reachability();
                cycles();
            }
        }
        if (options_.check_tags)
            tags();
        return std::move(report_);
    }

  private:
    void
    structural()
    {
        std::set<std::string> seen;
        for (const NodeDecl& node : graph_.nodes()) {
            if (!seen.insert(node.name).second)
                report_.add(Severity::Error, "structure.duplicate-name",
                            node.name, "instance name declared twice");
            NodeInfo info;
            info.decl = &node;
            Result<Signature> sig = signatureOf(node.type, node.attrs);
            if (sig.ok()) {
                info.sig = sig.take();
                info.sig_ok = true;
            } else {
                report_.add(Severity::Error, "structure.unknown-type",
                            node.name, sig.error().message);
            }
            checkArity(node);
            nodes_.emplace(node.name, std::move(info));
        }

        // Driver / consumer tables over edges and io bindings.
        std::map<PortRef, std::size_t> drivers;
        std::map<PortRef, std::size_t> consumers;
        for (const Edge& e : graph_.edges()) {
            if (checkEndpoint(e.src, /*is_output=*/true,
                              "edge source " + e.src.toString()))
                ++consumers[e.src];
            if (checkEndpoint(e.dst, /*is_output=*/false,
                              "edge target " + e.dst.toString()))
                ++drivers[e.dst];
        }
        for (std::size_t i = 0; i < graph_.inputs().size(); ++i) {
            if (!graph_.inputs()[i])
                continue;
            const PortRef& dst = *graph_.inputs()[i];
            if (checkEndpoint(dst, /*is_output=*/false,
                              "graph input " + std::to_string(i)))
                ++drivers[dst];
        }
        for (std::size_t i = 0; i < graph_.outputs().size(); ++i) {
            if (!graph_.outputs()[i])
                continue;
            const PortRef& src = *graph_.outputs()[i];
            if (checkEndpoint(src, /*is_output=*/true,
                              "graph output " + std::to_string(i)))
                ++consumers[src];
        }

        // Every signature port must be wired exactly once (outputs:
        // at most once; a dropped output is only a warning since the
        // token simply accumulates in its channel).
        for (const NodeDecl& node : graph_.nodes()) {
            const NodeInfo& info = nodes_[node.name];
            if (!info.sig_ok)
                continue;
            for (const std::string& port : info.sig.inputs) {
                PortRef ref{node.name, port};
                std::size_t n = drivers.count(ref) ? drivers[ref] : 0;
                if (n == 0)
                    report_.add(Severity::Error,
                                "structure.dangling-input",
                                node.name,
                                "input port " + port +
                                    " has no driver; the component "
                                    "can never fire");
                else if (n > 1)
                    report_.add(Severity::Error,
                                "structure.double-driven", node.name,
                                "input port " + port + " has " +
                                    std::to_string(n) + " drivers");
            }
            for (const std::string& port : info.sig.outputs) {
                PortRef ref{node.name, port};
                std::size_t n =
                    consumers.count(ref) ? consumers[ref] : 0;
                if (n == 0)
                    report_.add(Severity::Warning,
                                "structure.dangling-output",
                                node.name,
                                "output port " + port +
                                    " has no consumer; its tokens "
                                    "accumulate unread");
                else if (n > 1)
                    report_.add(Severity::Error,
                                "structure.double-used", node.name,
                                "output port " + port + " feeds " +
                                    std::to_string(n) +
                                    " inputs (insert a fork)");
            }
        }
    }

    /** Arity attributes must parse to a sane positive count. */
    void
    checkArity(const NodeDecl& node)
    {
        auto check = [&](const char* key) {
            if (node.attrs.find(key) == node.attrs.end())
                return;
            int v = attrInt(node.attrs, key, -1);
            if (v < 1 || v > 1024)
                report_.add(Severity::Error, "structure.bad-arity",
                            node.name,
                            std::string(key) + " attribute '" +
                                attrStr(node.attrs, key, "") +
                                "' is not a count in [1, 1024]");
        };
        if (node.type == "fork")
            check("out");
        if (node.type == "join")
            check("in");
    }

    /** Edge/io endpoint sanity; true when the port is usable. */
    bool
    checkEndpoint(const PortRef& ref, bool is_output,
                  const std::string& where)
    {
        auto it = nodes_.find(ref.inst);
        if (it == nodes_.end()) {
            report_.add(Severity::Error, "structure.missing-instance",
                        ref.inst,
                        where + " references an undeclared instance");
            return false;
        }
        if (!it->second.sig_ok)
            return false;  // unknown-type already reported
        const std::vector<std::string>& ports =
            is_output ? it->second.sig.outputs : it->second.sig.inputs;
        if (!hasPort(ports, ref.port)) {
            report_.add(Severity::Error, "structure.unknown-port",
                        ref.inst,
                        where + " names no " +
                            (is_output ? "output" : "input") +
                            " port of a " + it->second.decl->type);
            return false;
        }
        return true;
    }

    void
    types()
    {
        Result<TypeReport> typed = checkWellTyped(graph_);
        if (!typed.ok())
            report_.add(Severity::Error, "type.conflict", "",
                        typed.error().message);
    }

    /** Forward token-flow flood from graph inputs and generators. */
    void
    reachability()
    {
        std::set<std::string> reached;
        std::deque<std::string> frontier;
        auto seed = [&](const std::string& inst) {
            if (reached.insert(inst).second)
                frontier.push_back(inst);
        };
        for (const auto& binding : graph_.inputs())
            if (binding)
                seed(binding->inst);
        for (const NodeDecl& node : graph_.nodes())
            if (node.type == "source" || node.type == "init")
                seed(node.name);
        while (!frontier.empty()) {
            std::string at = frontier.front();
            frontier.pop_front();
            const NodeInfo& info = nodes_[at];
            if (!info.sig_ok)
                continue;
            for (const std::string& port : info.sig.outputs)
                for (const PortRef& c :
                     graph_.consumersOf(PortRef{at, port}))
                    seed(c.inst);
        }
        for (const NodeDecl& node : graph_.nodes())
            if (reached.count(node.name) == 0)
                report_.add(Severity::Warning, "graph.unreachable",
                            node.name,
                            "no token from any graph input or "
                            "generator can reach this component");
        for (std::size_t i = 0; i < graph_.outputs().size(); ++i) {
            if (!graph_.outputs()[i])
                continue;
            if (reached.count(graph_.outputs()[i]->inst) == 0)
                report_.add(Severity::Error, "token.starved-output",
                            graph_.outputs()[i]->inst,
                            "graph output " + std::to_string(i) +
                                " can never receive a token");
        }
    }

    /** Token conservation: every cycle needs a component that can
     * introduce a token (init/mux/merge/tagger); a cycle of pure
     * plumbing starts empty and stays empty — guaranteed deadlock. */
    void
    cycles()
    {
        // Node-index adjacency (edges only; io bindings are acyclic).
        std::map<std::string, std::size_t> index;
        for (std::size_t i = 0; i < graph_.nodes().size(); ++i)
            index[graph_.nodes()[i].name] = i;
        std::vector<std::vector<std::size_t>> adj(graph_.nodes().size());
        std::vector<bool> self_loop(graph_.nodes().size(), false);
        for (const Edge& e : graph_.edges()) {
            auto s = index.find(e.src.inst);
            auto d = index.find(e.dst.inst);
            if (s == index.end() || d == index.end())
                continue;
            if (s->second == d->second)
                self_loop[s->second] = true;
            adj[s->second].push_back(d->second);
        }

        // Iterative Tarjan SCC.
        const std::size_t n = adj.size();
        std::vector<int> low(n, -1), num(n, -1);
        std::vector<bool> on_stack(n, false);
        std::vector<std::size_t> stack;
        int counter = 0;
        struct Frame
        {
            std::size_t v;
            std::size_t edge = 0;
        };
        for (std::size_t root = 0; root < n; ++root) {
            if (num[root] != -1)
                continue;
            std::vector<Frame> call{{root}};
            while (!call.empty()) {
                Frame& f = call.back();
                std::size_t v = f.v;
                if (f.edge == 0) {
                    num[v] = low[v] = counter++;
                    stack.push_back(v);
                    on_stack[v] = true;
                }
                if (f.edge < adj[v].size()) {
                    std::size_t w = adj[v][f.edge++];
                    if (num[w] == -1)
                        call.push_back(Frame{w});
                    else if (on_stack[w])
                        low[v] = std::min(low[v], num[w]);
                    continue;
                }
                if (low[v] == num[v]) {
                    std::vector<std::size_t> scc;
                    for (;;) {
                        std::size_t w = stack.back();
                        stack.pop_back();
                        on_stack[w] = false;
                        scc.push_back(w);
                        if (w == v)
                            break;
                    }
                    checkScc(scc, self_loop);
                }
                call.pop_back();
                if (!call.empty()) {
                    Frame& parent = call.back();
                    low[parent.v] =
                        std::min(low[parent.v], low[v]);
                }
            }
        }
    }

    void
    checkScc(const std::vector<std::size_t>& scc,
             const std::vector<bool>& self_loop)
    {
        bool cyclic = scc.size() > 1 ||
                      (scc.size() == 1 && self_loop[scc[0]]);
        if (!cyclic)
            return;
        std::vector<std::string> names;
        for (std::size_t i : scc) {
            const NodeDecl& node = graph_.nodes()[i];
            if (breaksCycle(node.type))
                return;
            names.push_back(node.name);
        }
        std::sort(names.begin(), names.end());
        std::string list;
        for (std::size_t i = 0; i < std::min<std::size_t>(names.size(), 6);
             ++i)
            list += (i ? ", " : "") + names[i];
        if (names.size() > 6)
            list += ", ...";
        report_.add(Severity::Error, "token.cycle-without-source",
                    names.front(),
                    "cycle {" + list +
                        "} contains no init/mux/merge/tagger; it can "
                        "never hold a token");
    }

    void
    tags()
    {
        for (const NodeDecl& node : graph_.nodes()) {
            if (node.type != "tagger")
                continue;
            int count = attrInt(node.attrs, "tags", -1);
            if (count < 1 || count > options_.max_tag_count)
                report_.add(Severity::Error, "tag.count", node.name,
                            "tags attribute '" +
                                attrStr(node.attrs, "tags", "") +
                                "' is not a count in [1, " +
                                std::to_string(options_.max_tag_count) +
                                "]");
            checkRegion(node);
        }
    }

    /** Flood the tagged region from out0 and check its shape. */
    void
    checkRegion(const NodeDecl& tagger)
    {
        std::set<std::string> region;
        bool returns = false;
        std::deque<PortRef> frontier;
        for (const PortRef& c :
             graph_.consumersOf(PortRef{tagger.name, "out0"}))
            frontier.push_back(c);
        bool empty_region = frontier.empty();
        while (!frontier.empty()) {
            PortRef at = frontier.front();
            frontier.pop_front();
            if (at.inst == tagger.name) {
                if (at.port == "in1")
                    returns = true;
                continue;
            }
            if (!region.insert(at.inst).second)
                continue;
            const NodeDecl* n = graph_.findNode(at.inst);
            if (n == nullptr)
                continue;
            if (n->type == "tagger") {
                report_.add(Severity::Error, "tag.nested-region",
                            tagger.name,
                            "tagged region contains tagger " + at.inst +
                                "; nested tag domains are unsupported");
                continue;
            }
            Result<Signature> sig = signatureOf(n->type, n->attrs);
            if (!sig.ok())
                continue;
            for (const std::string& port : sig.value().outputs)
                for (const PortRef& c :
                     graph_.consumersOf(PortRef{at.inst, port}))
                    frontier.push_back(c);
        }
        std::optional<PortRef> ret =
            graph_.driverOf(PortRef{tagger.name, "in1"});
        if (empty_region || !returns) {
            report_.add(Severity::Error, "tag.unpaired", tagger.name,
                        "region fed by out0 never returns a tagged "
                        "token to in1");
        } else if (ret && ret->inst != tagger.name &&
                   region.count(ret->inst) == 0) {
            report_.add(Severity::Error, "tag.foreign-return",
                        tagger.name,
                        "in1 is driven by " + ret->inst +
                            ", which lies outside this tagger's "
                            "region");
        }
    }

    const ExprHigh& graph_;
    const ValidatorOptions& options_;
    std::map<std::string, NodeInfo> nodes_;
    ValidationReport report_;
};

}  // namespace

ValidationReport
validateCircuit(const ExprHigh& graph, const ValidatorOptions& options)
{
    GRAPHITI_OBS_TIMER(obs_timer, "guard.validate_seconds");
    GRAPHITI_OBS_COUNT("guard.validations", 1);
    ValidationReport report = Validator(graph, options).run();
    if (!report.ok())
        GRAPHITI_OBS_COUNT("guard.validation_errors",
                           static_cast<std::int64_t>(report.errorCount()));
    return report;
}

}  // namespace graphiti::guard
