#ifndef GRAPHITI_GUARD_DIAGNOSTICS_HPP
#define GRAPHITI_GUARD_DIAGNOSTICS_HPP

/**
 * @file
 * Structured diagnostics for the pipeline guard layer.
 *
 * The guard never throws: every problem a validator rule detects is
 * reported as a Diagnostic carrying a stable machine-readable rule id
 * (e.g. "structure.dangling-input", "tag.unpaired"), the offending
 * component, and a human-readable message. Callers decide policy:
 * the transactional rewrite engine rolls back on errors, the Compiler
 * refuses invalid inputs, tests assert on rule ids.
 */

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace graphiti::guard {

/** How bad a finding is. */
enum class Severity
{
    Warning,  ///< suspicious but executable (e.g. unreachable node)
    Error,    ///< the circuit is not well-formed
};

const char* toString(Severity severity);

/** One validator finding. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Stable rule id, dot-namespaced: "structure.*", "type.*",
     * "token.*", "tag.*". */
    std::string rule;
    /** Offending component instance (empty for graph-level rules). */
    std::string component;
    std::string message;

    std::string toString() const;
    obs::json::Value toJson() const;
};

/** The outcome of one validation pass. */
class ValidationReport
{
  public:
    void
    add(Severity severity, std::string rule, std::string component,
        std::string message)
    {
        diagnostics_.push_back(Diagnostic{severity, std::move(rule),
                                          std::move(component),
                                          std::move(message)});
    }

    const std::vector<Diagnostic>& diagnostics() const
    {
        return diagnostics_;
    }

    /** Number of error-severity findings. */
    std::size_t errorCount() const;

    /** True when no error-severity finding was recorded. */
    bool ok() const { return errorCount() == 0; }

    /** Whether any finding carries rule id @p rule. */
    bool hasRule(const std::string& rule) const;

    /** First error-severity finding; nullptr when ok(). */
    const Diagnostic* firstError() const;

    /** One line per finding (empty string when clean). */
    std::string render() const;

    obs::json::Value toJson() const;

  private:
    std::vector<Diagnostic> diagnostics_;
};

}  // namespace graphiti::guard

#endif  // GRAPHITI_GUARD_DIAGNOSTICS_HPP
