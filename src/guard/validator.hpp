#ifndef GRAPHITI_GUARD_VALIDATOR_HPP
#define GRAPHITI_GUARD_VALIDATOR_HPP

/**
 * @file
 * Structural well-formedness validation of dataflow circuits.
 *
 * The validator is a fast lint over ExprHigh: it never throws and
 * never mutates, it only reports. It subsumes ExprHigh::validate()
 * (which stops at the first problem) with a complete sweep producing
 * one Diagnostic per finding, and layers circuit-level rules on top
 * of the purely structural ones:
 *
 *   structure.duplicate-name   two instances share a name
 *   structure.unknown-type     component type has no signature
 *   structure.bad-arity        arity attribute out of range
 *   structure.missing-instance edge/io endpoint names no instance
 *   structure.unknown-port     edge/io endpoint names no signature port
 *   structure.double-driven    input port with more than one driver
 *   structure.double-used      output port feeding more than one input
 *   structure.dangling-input   input port with no driver (deadlock)
 *   structure.dangling-output  output port with no consumer (warning)
 *   type.conflict              wire type unification fails
 *   graph.unreachable          component no token can ever reach (warning)
 *   token.cycle-without-source cycle with no init/mux/merge/tagger
 *   token.starved-output       graph output no token can ever reach
 *   tag.count                  tagger tag count outside [1, max]
 *   tag.unpaired               tagged region never returns to its tagger
 *   tag.nested-region          a tagged region contains another tagger
 *   tag.foreign-return         tagger return fed from outside its region
 *
 * Severity is Error unless noted. A circuit with zero errors is safe
 * to lower, simulate and rewrite; warnings flag suspicious shapes
 * that stay executable.
 */

#include "graph/expr_high.hpp"
#include "guard/diagnostics.hpp"

namespace graphiti::guard {

/** Validator knobs. */
struct ValidatorOptions
{
    /** Run wire-type unification (type.conflict). */
    bool check_types = true;
    /** Run reachability / token-conservation rules. */
    bool check_token_flow = true;
    /** Run tagger/tag-domain rules. */
    bool check_tags = true;
    /** Largest accepted tagger tag count (tag-width bound). */
    int max_tag_count = 4096;
};

/** Validate @p graph; never throws, never mutates. */
ValidationReport validateCircuit(const ExprHigh& graph,
                                 const ValidatorOptions& options = {});

}  // namespace graphiti::guard

#endif  // GRAPHITI_GUARD_VALIDATOR_HPP
