#include "refine/trace.hpp"

#include <deque>
#include <unordered_set>

namespace graphiti {

std::string
IoEvent::toString() const
{
    return std::string(is_input ? "in " : "out ") + port.toString() +
           " " + token.toString();
}

IoTrace
randomTrace(const DenotedModule& mod, const std::vector<Token>& input_pool,
            Rng& rng, const TraceGenOptions& options)
{
    IoTrace trace;
    GraphState state = mod.initialState();
    std::size_t inputs_fed = 0;

    for (std::size_t step = 0; step < options.max_steps; ++step) {
        // Gather the enabled moves in the current state.
        struct Move
        {
            enum class Kind { input, output, internal } kind;
            std::size_t index;   // port index for I/O
            std::size_t choice;  // successor / token choice
        };
        std::vector<Move> moves;

        bool may_input = inputs_fed < options.max_inputs &&
                         !input_pool.empty();
        if (may_input) {
            for (std::size_t p = 0; p < mod.inputNames().size(); ++p) {
                // Any token from the pool may be offered; pick one per
                // port per step to keep the move list small.
                moves.push_back(Move{Move::Kind::input, p,
                                     rng.below(input_pool.size())});
            }
        }
        for (std::size_t p = 0; p < mod.outputNames().size(); ++p) {
            auto outs = mod.outputStep(state, mod.outputNames()[p]);
            for (std::size_t c = 0; c < outs.size(); ++c)
                moves.push_back(Move{Move::Kind::output, p, c});
        }
        std::vector<GraphState> internals = mod.internalSteps(state);
        for (std::size_t c = 0; c < internals.size(); ++c)
            moves.push_back(Move{Move::Kind::internal, 0, c});

        if (moves.empty())
            break;

        // Bias scheduling toward making progress: prefer non-input
        // moves with probability (1 - input_bias) when any exist.
        std::vector<Move> preferred;
        bool take_input = rng.chance(options.input_bias);
        for (const Move& m : moves) {
            bool is_input = m.kind == Move::Kind::input;
            if (is_input == take_input)
                preferred.push_back(m);
        }
        const std::vector<Move>& pool = preferred.empty() ? moves
                                                          : preferred;
        const Move& move = pool[rng.below(pool.size())];

        switch (move.kind) {
          case Move::Kind::input: {
            const LowPortId& port = mod.inputNames()[move.index];
            const Token& token = input_pool[move.choice];
            auto succs = mod.inputStep(state, port, token);
            if (succs.empty())
                break;  // refused (bounded queue); try another step
            state = std::move(succs[rng.below(succs.size())]);
            trace.push_back(IoEvent{true, port, token});
            ++inputs_fed;
            break;
          }
          case Move::Kind::output: {
            const LowPortId& port = mod.outputNames()[move.index];
            auto outs = mod.outputStep(state, port);
            auto& [token, succ] = outs[move.choice];
            trace.push_back(IoEvent{false, port, token});
            state = std::move(succ);
            break;
          }
          case Move::Kind::internal:
            state = std::move(internals[move.choice]);
            break;
        }
    }
    return trace;
}

namespace {

struct StateHashPtr
{
    std::size_t
    operator()(const GraphState& s) const
    {
        return s.hash();
    }
};

/** Close @p set under internal transitions of @p mod. */
Result<bool>
closeInternal(const DenotedModule& mod,
              std::unordered_set<GraphState, StateHashPtr>& set,
              std::size_t cap)
{
    std::deque<GraphState> frontier(set.begin(), set.end());
    while (!frontier.empty()) {
        GraphState state = std::move(frontier.front());
        frontier.pop_front();
        for (GraphState& succ : mod.internalSteps(state)) {
            if (set.count(succ) > 0)
                continue;
            if (set.size() >= cap)
                return err("trace search exceeded state cap");
            frontier.push_back(succ);
            set.insert(std::move(succ));
        }
    }
    return true;
}

}  // namespace

Result<bool>
admitsTrace(const DenotedModule& spec, const IoTrace& trace,
            std::size_t state_cap)
{
    std::unordered_set<GraphState, StateHashPtr> candidates;
    candidates.insert(spec.initialState());
    Result<bool> closed = closeInternal(spec, candidates, state_cap);
    if (!closed.ok())
        return closed;

    for (const IoEvent& event : trace) {
        std::unordered_set<GraphState, StateHashPtr> next;
        for (const GraphState& state : candidates) {
            if (event.is_input) {
                for (GraphState& succ :
                     spec.inputStep(state, event.port, event.token))
                    next.insert(std::move(succ));
            } else {
                for (auto& [token, succ] :
                     spec.outputStep(state, event.port)) {
                    if (token == event.token)
                        next.insert(std::move(succ));
                }
            }
        }
        if (next.empty())
            return false;
        if (next.size() > state_cap)
            return err("trace search exceeded state cap");
        closed = closeInternal(spec, next, state_cap);
        if (!closed.ok())
            return closed;
        candidates = std::move(next);
    }
    return true;
}

}  // namespace graphiti
