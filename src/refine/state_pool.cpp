#include "refine/state_pool.hpp"

namespace graphiti {

std::optional<std::uint32_t>
StatePool::findHashed(const CompState& comp, std::size_t h) const
{
    auto it = index_.find(h);
    if (it == index_.end())
        return std::nullopt;
    for (std::uint32_t id : it->second) {
        if (values_[id] == comp)
            return id;
    }
    return std::nullopt;
}

std::uint32_t
StatePool::intern(const CompState& comp)
{
    std::size_t h = comp.hash();
    if (auto hit = findHashed(comp, h))
        return *hit;
    std::uint32_t id = static_cast<std::uint32_t>(values_.size());
    values_.push_back(comp);
    tokens_.push_back(comp.totalTokens());
    value_bytes_ += comp.approxBytes();
    index_[h].push_back(id);
    return id;
}

std::optional<std::uint32_t>
StatePool::find(const CompState& comp) const
{
    return findHashed(comp, comp.hash());
}

std::size_t
StatePool::approxBytes() const
{
    // Unordered-map node: hash link + cached hash, plus the bucket
    // array; candidate vectors count their elements. Same node model
    // as the state index so the breakdown sums consistently.
    constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
    std::size_t bytes = value_bytes_;
    bytes += tokens_.size() * sizeof(std::size_t);
    bytes += index_.size() *
             (sizeof(std::pair<const std::size_t,
                               std::vector<std::uint32_t>>) +
              kNodeOverhead);
    bytes += values_.size() * sizeof(std::uint32_t);
    return bytes;
}

}  // namespace graphiti
