#ifndef GRAPHITI_REFINE_REFINEMENT_HPP
#define GRAPHITI_REFINE_REFINEMENT_HPP

/**
 * @file
 * Executable refinement checking (definitions 4.1-4.5 of the paper).
 *
 * checkRefinement(impl, spec) decides whether impl ⊑ spec holds on a
 * finite instantiation: it explores both transition systems under a
 * common input domain and token budget, then computes the *largest*
 * weak simulation relation φ over reachable pairs as a greatest
 * fixpoint of the three simulation diagrams:
 *
 *  - input    (4.1): impl input step matched by spec input step
 *                    followed by internal steps;
 *  - output   (4.2): impl output step matched by spec internal steps
 *                    followed by the same output (internal steps
 *                    strictly *before* the output — the asymmetry
 *                    induced by connection fusion, section 4.5);
 *  - internal (4.3): impl internal step matched by spec internal
 *                    steps.
 *
 * impl ⊑ spec holds iff the initial pair survives. On failure a
 * counterexample names the first unmatched move.
 *
 * This is the paper's refinement made algorithmic: the Lean proofs
 * establish the diagrams for all instantiations; the checker decides
 * them exactly on the given finite one.
 */

#include <string>

#include "refine/state_space.hpp"

namespace graphiti {

/** Outcome of a refinement check. */
struct RefinementReport
{
    bool refines = false;
    /** Human-readable failing move; empty when refines. */
    std::string counterexample;
    std::size_t impl_states = 0;
    std::size_t spec_states = 0;
    std::size_t reachable_pairs = 0;
    std::size_t fixpoint_iterations = 0;
    /**
     * High-water size-based byte estimate of the game's pair tables
     * (alive/dead sets, reasons, descent map). Resource accounting
     * only: never serialized with the verdict and never compared by
     * golden tests; 0 when the build compiles observability out.
     */
    std::size_t peak_bytes = 0;
    /**
     * High-water byte estimate of the two explorations feeding the
     * game (state vectors + dedup indexes), when this report came
     * from checkRefinement/checkGraphRefinement (the on-spaces entry
     * point leaves it 0 — the caller owns the spaces). Same
     * accounting-only contract as peak_bytes.
     */
    std::size_t explore_peak_bytes = 0;
};

/**
 * Decide impl ⊑ spec on the finite instantiation given by @p domain
 * and @p limits. The two modules must expose identical external port
 * names. Fails (as opposed to reporting non-refinement) when the
 * port interfaces differ or exploration exceeds its limits.
 */
Result<RefinementReport> checkRefinement(const DenotedModule& impl,
                                         const DenotedModule& spec,
                                         const InputDomain& domain,
                                         const ExplorationLimits& limits);

/**
 * Run the simulation game on already-explored spaces.
 *
 * With @p optimistic_frontier set, the game is sound on *partial*
 * spaces in the bounded-verdict sense: a pair is never killed when
 * the spec's weak closure touches an unexpanded frontier state (the
 * missing edges could contain the matching response), and impl
 * frontier states have no attacker moves. refines == true then means
 * "no counterexample within the explored bound", not full refinement
 * — the guard::Governor reports it at the BoundedPartial level.
 * A counterexample found in optimistic mode is a genuine unmatched
 * move: every spec response set it ranges over was fully expanded.
 *
 * @p stop cancels the game between fixpoint sweeps (an error).
 * @p threads fans discovery and fixpoint pruning out over a worker
 * pool (1 = sequential, 0 = hardware concurrency); the verdict —
 * including the counterexample text — is identical at any count.
 */
Result<RefinementReport> checkRefinementOnSpaces(
    const StateSpace& impl, const StateSpace& spec,
    bool optimistic_frontier = false, const StopToken& stop = {},
    std::size_t threads = 1);

/**
 * Convenience overload: lower and denote two ExprHigh graphs in
 * @p env, then check refinement with a uniform domain.
 */
Result<RefinementReport> checkGraphRefinement(
    const ExprHigh& impl, const ExprHigh& spec, const Environment& env,
    const std::vector<Token>& uniform_tokens,
    const ExplorationLimits& limits);

}  // namespace graphiti

#endif  // GRAPHITI_REFINE_REFINEMENT_HPP
