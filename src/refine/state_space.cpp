#include "refine/state_space.hpp"

#include <deque>
#include <sstream>

#include "obs/scope.hpp"

namespace graphiti {

InputDomain
InputDomain::uniform(const DenotedModule& mod, std::vector<Token> tokens)
{
    InputDomain d;
    for (const LowPortId& port : mod.inputNames())
        d.tokens[port] = tokens;
    return d;
}

namespace {

/** Dedup key: graph state plus remaining budget. */
struct Key
{
    GraphState state;
    std::uint32_t budget;

    bool operator==(const Key&) const = default;
};

struct KeyHash
{
    std::size_t
    operator()(const Key& k) const
    {
        return k.state.hash() * 31 + k.budget;
    }
};

}  // namespace

Result<StateSpace>
StateSpace::explore(const DenotedModule& mod, const InputDomain& domain,
                    const ExplorationLimits& limits)
{
    Result<StateSpace> space = explorePartial(mod, domain, limits);
    if (!space.ok())
        return space.error();
    if (!space.value().complete()) {
        if (space.value().stopped())
            return err("state space exploration cancelled: " +
                       space.value().stopReason());
        return err("state space exploration exceeded max_states");
    }
    return space;
}

Result<StateSpace>
StateSpace::explorePartial(const DenotedModule& mod,
                           const InputDomain& domain,
                           const ExplorationLimits& limits)
{
    StateSpace space;
    space.stop_ = limits.stop;
    space.in_ports_ = mod.inputNames();
    space.out_ports_ = mod.outputNames();
    for (const LowPortId& port : space.in_ports_) {
        auto it = domain.tokens.find(port);
        space.domain_tokens_.push_back(
            it == domain.tokens.end() ? std::vector<Token>{} : it->second);
    }
    space.concrete_.push_back(mod.initialState());
    space.budget_.push_back(
        static_cast<std::uint32_t>(limits.input_budget));
    space.internal_.emplace_back();
    space.inputs_.emplace_back();
    space.outputs_.emplace_back();
    space.frontier_.push_back(0);

    Result<bool> expanded = space.expand(
        mod, std::max<std::size_t>(1, limits.max_states));
    if (!expanded.ok())
        return expanded.error();
    return space;
}

Result<bool>
StateSpace::resume(const DenotedModule& mod,
                   std::size_t additional_states)
{
    if (complete())
        return true;
    return expand(mod, concrete_.size() + additional_states);
}

Result<bool>
StateSpace::expand(const DenotedModule& mod, std::size_t max_states)
{
    GRAPHITI_OBS_TIMER(obs_timer, "refine.explore_seconds");
#if GRAPHITI_OBS_ENABLED
    std::size_t states_before = concrete_.size();
    auto obs_start = std::chrono::steady_clock::now();
#endif
    // Rebuild the dedup index from the interned states; a parked
    // partial space carries no index, only its frontier.
    std::unordered_map<Key, std::uint32_t, KeyHash> index;
    index.reserve(concrete_.size());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(concrete_.size()); ++i)
        index.emplace(Key{concrete_[i], budget_[i]}, i);

    std::deque<std::uint32_t> frontier(frontier_.begin(),
                                       frontier_.end());
    frontier_.clear();

    bool capped = false;
    auto intern = [&](GraphState state,
                      std::uint32_t budget) -> std::optional<std::uint32_t> {
        Key key{std::move(state), budget};
        auto it = index.find(key);
        if (it != index.end())
            return it->second;
        if (concrete_.size() >= max_states) {
            capped = true;
            return std::nullopt;
        }
        std::uint32_t id = static_cast<std::uint32_t>(concrete_.size());
        concrete_.push_back(key.state);
        budget_.push_back(budget);
        internal_.emplace_back();
        inputs_.emplace_back();
        outputs_.emplace_back();
        index.emplace(std::move(key), id);
        frontier.push_back(id);
        return id;
    };

    stopped_ = false;
    stop_reason_.clear();
    while (!frontier.empty() && !capped) {
        std::uint32_t id = frontier.front();
        frontier.pop_front();
        // Cooperative cancellation: park the state unexpanded, like a
        // cap, so the space stays resumable and edge-exact.
        if (stop_.stopRequested()) {
            stopped_ = true;
            stop_reason_ = stop_.reason();
            frontier_.push_back(id);
            break;
        }
        // Copy, since intern() may reallocate concrete_.
        GraphState state = concrete_[id];
        std::uint32_t budget = budget_[id];

        for (GraphState& succ : mod.internalSteps(state)) {
            auto dst = intern(std::move(succ), budget);
            if (!dst)
                break;
            internal_[id].push_back(*dst);
        }
        if (budget > 0 && !capped) {
            for (std::uint32_t p = 0;
                 p < in_ports_.size() && !capped; ++p) {
                const auto& toks = domain_tokens_[p];
                for (std::uint32_t t = 0;
                     t < toks.size() && !capped; ++t) {
                    for (GraphState& succ : mod.inputStep(
                             state, in_ports_[p], toks[t])) {
                        auto dst = intern(std::move(succ), budget - 1);
                        if (!dst)
                            break;
                        inputs_[id].push_back(InputEdge{p, t, *dst});
                    }
                }
            }
        }
        if (!capped) {
            for (std::uint32_t p = 0;
                 p < out_ports_.size() && !capped; ++p) {
                for (auto& [token, succ] :
                     mod.outputStep(state, out_ports_[p])) {
                    auto dst = intern(std::move(succ), budget);
                    if (!dst)
                        break;
                    outputs_[id].push_back(
                        OutputEdge{p, std::move(token), *dst});
                }
            }
        }
        if (capped) {
            // The state was only partially expanded: drop its edges
            // and park it (front of the frontier) for resume().
            internal_[id].clear();
            inputs_[id].clear();
            outputs_[id].clear();
            frontier_.push_back(id);
        }
    }
    for (std::uint32_t id : frontier)
        frontier_.push_back(id);

#if GRAPHITI_OBS_ENABLED
    if (obs::Scope* scope = obs::current()) {
        std::size_t grown = concrete_.size() - states_before;
        scope->metrics().add("refine.states",
                             static_cast<std::int64_t>(grown));
        scope->metrics().add("refine.explorations");
        scope->metrics().set("refine.frontier",
                             static_cast<double>(frontier_.size()));
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             obs_start)
                             .count();
        if (seconds > 0.0)
            scope->metrics().setMax(
                "refine.states_per_second",
                static_cast<double>(grown) / seconds);
    }
#endif

    // Memoized closures may predate the new edges; recompute lazily.
    closure_.assign(concrete_.size(), std::nullopt);
    return true;
}

const std::vector<std::uint32_t>&
StateSpace::internalClosure(std::uint32_t s) const
{
    if (closure_[s])
        return *closure_[s];
    std::vector<std::uint32_t> reach;
    std::vector<bool> seen(numStates(), false);
    std::deque<std::uint32_t> frontier{s};
    seen[s] = true;
    while (!frontier.empty()) {
        std::uint32_t cur = frontier.front();
        frontier.pop_front();
        reach.push_back(cur);
        for (std::uint32_t next : internal_[cur]) {
            if (!seen[next]) {
                seen[next] = true;
                frontier.push_back(next);
            }
        }
    }
    closure_[s] = std::move(reach);
    return *closure_[s];
}

std::string
StateSpace::describeState(std::uint32_t s) const
{
    std::ostringstream os;
    os << "state " << s << " (budget " << budget_[s] << ")\n"
       << concrete_[s].toString();
    return os.str();
}

}  // namespace graphiti
