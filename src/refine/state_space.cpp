#include "refine/state_space.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>
#include <stdexcept>

#include "obs/scope.hpp"

namespace graphiti {

namespace detail {

/**
 * Disk parking for cold frontier rows.
 *
 * Created with the write-temp+rename pattern (like the Perfetto sink
 * and the verdict store): the row words are written to a `.tmp`
 * sibling, fsynced, then renamed into place, so a crash never leaves
 * a half-written spill file under the final name. The file holds raw
 * little-endian-of-this-process uint32 words — it never outlives the
 * process (the destructor unlinks it), so no portable format is
 * needed.
 */
class FrontierSpill
{
  public:
    /** Spill @p words uint32 values; nullptr on any I/O failure (the
     * caller then simply keeps the rows in RAM). */
    static std::unique_ptr<FrontierSpill>
    create(const std::uint32_t* data, std::size_t words)
    {
        static std::atomic<std::uint64_t> counter{0};
        const char* tmpdir = std::getenv("TMPDIR");
        std::string dir =
            (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
        std::string path = dir + "/graphiti-frontier-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(counter.fetch_add(1)) +
                           ".spill";
        std::string tmp = path + ".tmp";
        int wfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0600);
        if (wfd < 0)
            return nullptr;
        const char* bytes = reinterpret_cast<const char*>(data);
        std::size_t total = words * sizeof(std::uint32_t);
        std::size_t done = 0;
        while (done < total) {
            ssize_t n = ::write(wfd, bytes + done, total - done);
            if (n <= 0) {
                ::close(wfd);
                ::unlink(tmp.c_str());
                return nullptr;
            }
            done += static_cast<std::size_t>(n);
        }
        ::fsync(wfd);
        ::close(wfd);
        if (::rename(tmp.c_str(), path.c_str()) != 0) {
            ::unlink(tmp.c_str());
            return nullptr;
        }
        int rfd = ::open(path.c_str(), O_RDONLY);
        if (rfd < 0) {
            ::unlink(path.c_str());
            return nullptr;
        }
        auto spill = std::unique_ptr<FrontierSpill>(new FrontierSpill);
        spill->path_ = std::move(path);
        spill->fd_ = rfd;
        spill->words_ = words;
        return spill;
    }

    ~FrontierSpill()
    {
        if (fd_ >= 0)
            ::close(fd_);
        if (!path_.empty())
            ::unlink(path_.c_str());
    }

    FrontierSpill(const FrontierSpill&) = delete;
    FrontierSpill& operator=(const FrontierSpill&) = delete;

    std::size_t words() const { return words_; }
    std::size_t bytes() const { return words_ * sizeof(std::uint32_t); }

    bool
    readWords(std::size_t word_off, std::size_t nwords,
              std::uint32_t* out) const
    {
        char* dst = reinterpret_cast<char*>(out);
        std::size_t total = nwords * sizeof(std::uint32_t);
        std::size_t off = word_off * sizeof(std::uint32_t);
        std::size_t done = 0;
        while (done < total) {
            ssize_t n = ::pread(fd_, dst + done, total - done,
                                static_cast<off_t>(off + done));
            if (n <= 0)
                return false;
            done += static_cast<std::size_t>(n);
        }
        return true;
    }

  private:
    FrontierSpill() = default;

    std::string path_;
    int fd_ = -1;
    std::size_t words_ = 0;
};

}  // namespace detail

InputDomain
InputDomain::uniform(const DenotedModule& mod, std::vector<Token> tokens)
{
    InputDomain d;
    for (const LowPortId& port : mod.inputNames())
        d.tokens[port] = tokens;
    return d;
}

namespace {

std::uint64_t
fnv1a64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1a64(std::uint64_t h, const std::string& s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Hash of an encoded state: FNV over the pool-id row plus budget.
 * Pool ids are canonical (merge-order interning), so this hash — and
 * everything derived from it, including index shard assignment — is
 * identical at any thread count and across park/resume. */
std::uint64_t
hashRow(const std::uint32_t* row, std::size_t width,
        std::uint32_t budget)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < width; ++i)
        h = fnv1a64(h, row[i]);
    return fnv1a64(h, budget);
}

/**
 * The state-interning table, sharded by encoded-row hash.
 *
 * Keys are (pool-id row, budget) — the rows themselves live in the
 * StateSpace; the table stores only hash -> candidate state ids, so
 * deduplication no longer duplicates state storage. During the
 * parallel successor phase the table is *frozen*: workers do
 * read-only lookups (no locks needed — no writer exists until the
 * barrier). Inserts happen only in the sequential merge that follows,
 * so canonical ids are assigned in the exact order the sequential
 * worklist would have produced. Sharding keeps each map small (cache-
 * friendly merge) and lets reserve() spread one large allocation.
 */
class ShardedStateIndex
{
  public:
    void
    reserve(std::size_t total)
    {
        for (auto& shard : shards_)
            shard.reserve(total / kShards + 1);
    }

    /** First candidate under @p h satisfying @p eq (which compares
     * the candidate's stored row + budget against the probe). */
    template <typename Eq>
    std::optional<std::uint32_t>
    lookup(std::uint64_t h, Eq&& eq) const
    {
        const auto& shard = shards_[shardOf(h)];
        auto it = shard.find(h);
        if (it == shard.end())
            return std::nullopt;
        for (std::uint32_t id : it->second) {
            if (eq(id))
                return id;
        }
        return std::nullopt;
    }

    void
    insert(std::uint64_t h, std::uint32_t id)
    {
        shards_[shardOf(h)][h].push_back(id);
        ++ids_;
    }

    /**
     * Byte estimate of the table itself: nodes, candidate-id
     * elements, and bucket arrays. No deep keys anymore — states are
     * referenced by id. Bucket counts follow deterministically from
     * the canonical insertion sequence, but differ across standard
     * libraries, so this figure feeds resource accounting and never
     * any verdict.
     */
    std::size_t
    approxBytes() const
    {
        // Unordered-map node: hash link + cached hash + payload.
        constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
        std::size_t bytes = ids_ * sizeof(std::uint32_t);
        for (const auto& shard : shards_) {
            bytes += shard.size() *
                     (sizeof(std::pair<const std::uint64_t,
                                       std::vector<std::uint32_t>>) +
                      kNodeOverhead);
            bytes += shard.bucket_count() * sizeof(void*);
        }
        return bytes;
    }

  private:
    static constexpr std::size_t kShards = 64;

    static std::size_t
    shardOf(std::uint64_t h)
    {
        // Use high bits: the maps consume the low bits for buckets.
        return (h >> 57) % kShards;
    }

    std::array<
        std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>,
        kShards>
        shards_;
    std::size_t ids_ = 0;
};

/** One successor produced while expanding a state, recorded in the
 * exact order the sequential loop enumerates them. */
struct Succ
{
    enum class Kind : std::uint8_t { Internal, Input, Output };

    Kind kind = Kind::Internal;
    std::uint32_t port_idx = 0;
    std::uint32_t token_idx = 0;
    Token token;  ///< Output edges only.
    /** Concrete successor, kept until the merge interns (or hits) it. */
    GraphState state;
    std::uint32_t budget = 0;
    /** Pool-id encoding, valid when encoded — every component was
     * already in the (frozen) pool. */
    std::vector<std::uint32_t> row;
    std::uint64_t hash = 0;
    bool encoded = false;
    /** Hit in the frozen index, resolved during the parallel phase. */
    std::optional<std::uint32_t> known;
};

}  // namespace

StateSpace::StateSpace() = default;
StateSpace::~StateSpace() = default;
StateSpace::StateSpace(StateSpace&&) noexcept = default;
StateSpace& StateSpace::operator=(StateSpace&&) noexcept = default;

Result<StateSpace>
StateSpace::explore(const DenotedModule& mod, const InputDomain& domain,
                    const ExplorationLimits& limits)
{
    Result<StateSpace> space = explorePartial(mod, domain, limits);
    if (!space.ok())
        return space.error();
    if (!space.value().complete()) {
        if (space.value().stopped())
            return err("state space exploration cancelled: " +
                       space.value().stopReason());
        return err("state space exploration exceeded max_states");
    }
    return space;
}

Result<StateSpace>
StateSpace::explorePartial(const DenotedModule& mod,
                           const InputDomain& domain,
                           const ExplorationLimits& limits)
{
    StateSpace space;
    space.stop_ = limits.stop;
    space.threads_ = ThreadPool::resolveThreads(limits.threads);
    space.spill_cap_bytes_ = limits.spill_bytes;
    space.in_ports_ = mod.inputNames();
    space.out_ports_ = mod.outputNames();
    for (const LowPortId& port : space.in_ports_) {
        auto it = domain.tokens.find(port);
        space.domain_tokens_.push_back(
            it == domain.tokens.end() ? std::vector<Token>{} : it->second);
    }
    GraphState initial = mod.initialState();
    space.width_ = static_cast<std::uint32_t>(initial.comps.size());
    for (const CompState& comp : initial.comps)
        space.rows_.push_back(space.pool_.intern(comp));
    space.budget_.push_back(
        static_cast<std::uint32_t>(limits.input_budget));
    space.int_off_.push_back(0);
    space.in_off_.push_back(0);
    space.out_off_.push_back(0);
    space.refreshFrontier();

    Result<bool> expanded = space.expand(
        mod, std::max<std::size_t>(1, limits.max_states));
    if (!expanded.ok())
        return expanded.error();
    return space;
}

Result<bool>
StateSpace::resume(const DenotedModule& mod,
                   std::size_t additional_states)
{
    if (complete())
        return true;
    GRAPHITI_OBS_COUNT("refine.resumes", 1);
    GRAPHITI_OBS_VPROBE(recordResume());
    return expand(mod, numStates() + additional_states);
}

Result<bool>
StateSpace::expand(const DenotedModule& mod, std::size_t max_states)
{
    GRAPHITI_OBS_TIMER(obs_timer, "refine.explore_seconds");
    // A parked space may hold its cold frontier rows on disk; page
    // them back before anything dereferences rows_.
    Result<bool> paged = pageBackSpill();
    if (!paged.ok())
        return paged;
#if GRAPHITI_OBS_ENABLED
    std::size_t states_before = numStates();
    auto obs_start = std::chrono::steady_clock::now();
    obs::VerifyProbe* probe = nullptr;
    if (obs::Scope* obs_scope = obs::current())
        probe = obs_scope->verifyProbe();
#endif
    // Rebuild the dedup index from the interned states; a parked
    // partial space carries no index, only its frontier. Reserve for
    // the whole run up front (capped — max_states defaults large).
    ShardedStateIndex index;
    index.reserve(std::max(numStates(),
                           std::min<std::size_t>(max_states, 1 << 16)));
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(numStates()); ++i)
        index.insert(
            hashRow(rows_.data() + std::size_t{i} * width_, width_,
                    budget_[i]),
            i);

    frontier_.clear();

    // Does interned state @p id match the probe row + budget?
    auto rowEq = [&](std::uint32_t id, const std::uint32_t* row,
                     std::uint32_t budget) {
        if (budget_[id] != budget)
            return false;
        const std::uint32_t* r = rows_.data() + std::size_t{id} * width_;
        return std::equal(r, r + width_, row);
    };

    bool capped = false;
    // Resolve one successor to a state id, interning on first sight.
    // Succs pre-resolved against the frozen pool + index carry their
    // encoding; everything else re-probes the live structures — a
    // previous merge in this batch may have interned the same value.
    // New component states are interned in slot order here, in the
    // sequential merge only, so pool ids are canonical
    // (docs/parallelism.md). Returns nullopt when the cap fires; the
    // pool is deliberately not touched before the cap check, so a
    // parked expansion leaves the pool exactly as a one-shot run
    // would have it at the same point.
    std::vector<std::uint32_t> scratch(width_);
    auto intern = [&](Succ& s) -> std::optional<std::uint32_t> {
        const std::uint32_t* row = nullptr;
        std::uint64_t h = 0;
        bool have_row = false;
        if (s.encoded) {
            row = s.row.data();
            h = s.hash;
            have_row = true;
        } else {
            have_row = true;
            for (std::uint32_t c = 0; c < width_; ++c) {
                auto id = pool_.find(s.state.comps[c]);
                if (!id) {
                    have_row = false;
                    break;
                }
                scratch[c] = *id;
            }
            if (have_row) {
                row = scratch.data();
                h = hashRow(row, width_, s.budget);
            }
        }
        if (have_row) {
            if (auto hit = index.lookup(h, [&](std::uint32_t id) {
                    return rowEq(id, row, s.budget);
                }))
                return *hit;
        }
        if (numStates() >= max_states) {
            capped = true;
            return std::nullopt;
        }
        if (!have_row) {
            for (std::uint32_t c = 0; c < width_; ++c)
                scratch[c] = pool_.intern(s.state.comps[c]);
            row = scratch.data();
            h = hashRow(row, width_, s.budget);
        }
        std::uint32_t id = static_cast<std::uint32_t>(numStates());
        rows_.insert(rows_.end(), row, row + width_);
        budget_.push_back(s.budget);
        index.insert(h, id);
        return id;
    };

#if GRAPHITI_OBS_ENABLED
    // Bounded-cadence progress publisher: once per frontier batch in
    // the parallel path, every kPublishEvery merges in the sequential
    // one, and once at the end — never per state. Observation only;
    // nothing here feeds back into exploration order.
    constexpr std::size_t kPublishEvery = 2048;
    auto obs_publish = [&] {
        std::size_t bytes = approxBytes() + index.approxBytes();
        peak_bytes_ = std::max(peak_bytes_, bytes);
        if (probe == nullptr)
            return;
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             obs_start)
                             .count();
        std::size_t grown = numStates() - states_before;
        probe->publishExplore(
            numStates(), numStates() - expanded_,
            seconds > 0.0 ? static_cast<double>(grown) / seconds : 0.0,
            100.0 * static_cast<double>(numStates()) /
                static_cast<double>(max_states));
        probe->notePeakBytes(bytes);
    };
#endif

    // Enumerate the successors of one state in the canonical order
    // (internal, then inputs port/token-major, then outputs), then
    // resolve each against the frozen pool + index. Read-only on
    // *this — safe to fan out while no merge runs.
    auto enumerate = [&](std::uint32_t id) {
        std::vector<Succ> out;
        GraphState state = decodeState(id);
        std::uint32_t budget = budget_[id];
        for (GraphState& next : mod.internalSteps(state)) {
            Succ s;
            s.kind = Succ::Kind::Internal;
            s.state = std::move(next);
            s.budget = budget;
            out.push_back(std::move(s));
        }
        if (budget > 0) {
            for (std::uint32_t p = 0; p < in_ports_.size(); ++p) {
                const auto& toks = domain_tokens_[p];
                for (std::uint32_t t = 0; t < toks.size(); ++t) {
                    for (GraphState& next :
                         mod.inputStep(state, in_ports_[p], toks[t])) {
                        Succ s;
                        s.kind = Succ::Kind::Input;
                        s.port_idx = p;
                        s.token_idx = t;
                        s.state = std::move(next);
                        s.budget = budget - 1;
                        out.push_back(std::move(s));
                    }
                }
            }
        }
        for (std::uint32_t p = 0; p < out_ports_.size(); ++p) {
            for (auto& [token, next] :
                 mod.outputStep(state, out_ports_[p])) {
                Succ s;
                s.kind = Succ::Kind::Output;
                s.port_idx = p;
                s.token = std::move(token);
                s.state = std::move(next);
                s.budget = budget;
                out.push_back(std::move(s));
            }
        }
        for (Succ& s : out) {
            s.row.resize(width_);
            s.encoded = true;
            for (std::uint32_t c = 0; c < width_; ++c) {
                auto pool_id = pool_.find(s.state.comps[c]);
                if (!pool_id) {
                    // A never-seen component state: the successor
                    // cannot be interned yet, so no index probe.
                    s.encoded = false;
                    s.row.clear();
                    break;
                }
                s.row[c] = *pool_id;
            }
            if (s.encoded) {
                s.hash = hashRow(s.row.data(), width_, s.budget);
                s.known = index.lookup(s.hash, [&](std::uint32_t id2) {
                    return rowEq(id2, s.row.data(), s.budget);
                });
            }
        }
        return out;
    };

    // Replay one expanded state's successors through intern() in
    // enumeration order — exactly what the sequential loop does
    // inline — and stamp the state's CSR edge ranges. Returns false
    // when the state cap fired mid-state: the partially recorded
    // edges are rolled back and the state stays pending, same as the
    // pre-CSR encoding dropped its edge vectors.
    auto merge = [&](std::vector<Succ>& succs) {
        std::size_t int0 = int_flat_.size();
        std::size_t in0 = in_flat_.size();
        std::size_t out0 = out_flat_.size();
        for (Succ& s : succs) {
            std::optional<std::uint32_t> dst =
                s.known ? s.known : intern(s);
            if (!dst) {
                int_flat_.resize(int0);
                in_flat_.resize(in0);
                out_flat_.resize(out0);
                return false;
            }
            switch (s.kind) {
            case Succ::Kind::Internal:
                int_flat_.push_back(*dst);
                break;
            case Succ::Kind::Input:
                in_flat_.push_back(
                    InputEdge{s.port_idx, s.token_idx, *dst});
                break;
            case Succ::Kind::Output:
                out_flat_.push_back(
                    OutputEdge{s.port_idx, std::move(s.token), *dst});
                break;
            }
        }
        int_off_.push_back(static_cast<std::uint32_t>(int_flat_.size()));
        in_off_.push_back(static_cast<std::uint32_t>(in_flat_.size()));
        out_off_.push_back(static_cast<std::uint32_t>(out_flat_.size()));
        ++expanded_;
        return true;
    };

    stopped_ = false;
    stop_reason_.clear();
    if (threads_ <= 1) {
        // Sequential worklist — the canonical order every other mode
        // reproduces. States are interned in ascending id order and
        // expanded FIFO, so the pending set is always the contiguous
        // range [expanded_, numStates()).
#if GRAPHITI_OBS_ENABLED
        std::size_t expanded_since_publish = 0;
#endif
        while (expanded_ < numStates() && !capped) {
            // Cooperative cancellation: leave the state unexpanded,
            // like a cap, so the space stays resumable + edge-exact.
            if (stop_.stopRequested()) {
                stopped_ = true;
                stop_reason_ = stop_.reason();
                break;
            }
            std::vector<Succ> succs = enumerate(expanded_);
            merge(succs);
#if GRAPHITI_OBS_ENABLED
            if (++expanded_since_publish >= kPublishEvery) {
                expanded_since_publish = 0;
                obs_publish();
            }
#endif
        }
    } else {
        // Batched frontier expansion: compute successor lists for the
        // whole pending range in parallel against the frozen pool and
        // index, then intern sequentially in frontier order. The
        // pending range is in sequential-FIFO order throughout, so
        // the merge assigns the same state ids — and interns the same
        // pool ids in the same order — the sequential loop would
        // (docs/parallelism.md).
        ThreadPool pool(threads_);
        while (expanded_ < numStates() && !capped && !stopped_) {
            std::uint32_t lo = expanded_;
            std::uint32_t hi = static_cast<std::uint32_t>(numStates());
            std::vector<std::vector<Succ>> succs(hi - lo);
            pool.parallelFor(hi - lo, [&](std::size_t i) {
                succs[i] = enumerate(lo + static_cast<std::uint32_t>(i));
            });
            for (std::uint32_t id = lo; id < hi; ++id) {
                if (capped || stopped_)
                    break;
                if (stop_.stopRequested()) {
                    stopped_ = true;
                    stop_reason_ = stop_.reason();
                    break;
                }
                merge(succs[id - lo]);
            }
#if GRAPHITI_OBS_ENABLED
            obs_publish();
#endif
        }
#if GRAPHITI_OBS_ENABLED
        // Lane occupancy of this expansion's pool — observation only,
        // aggregated so the cost is one snapshot per expand().
        if (obs::Scope* scope = obs::current()) {
            ThreadPool::PoolStats ps = pool.stats();
            std::uint64_t chunks = 0;
            std::uint64_t steals = 0;
            std::uint64_t idle_ns = 0;
            for (const ThreadPool::LaneStats& lane : ps.lanes) {
                chunks += lane.chunks;
                steals += lane.steals;
                idle_ns += lane.idle_ns;
            }
            scope->metrics().add(
                "pool.chunks", static_cast<std::int64_t>(chunks));
            scope->metrics().add(
                "pool.steals", static_cast<std::int64_t>(steals));
            scope->metrics().add(
                "pool.idle_ns", static_cast<std::int64_t>(idle_ns));
            scope->metrics().add(
                "pool.batches", static_cast<std::int64_t>(ps.batches));
        }
#endif
    }
    refreshFrontier();

#if GRAPHITI_OBS_ENABLED
    obs_publish();
    if (!frontier_.empty()) {
        // Exploration parked (cap or stop) with work left over.
        GRAPHITI_OBS_COUNT("refine.parks", 1);
        if (probe != nullptr)
            probe->recordPark();
    }
    if (obs::Scope* scope = obs::current()) {
        std::size_t grown = numStates() - states_before;
        scope->metrics().add("refine.states",
                             static_cast<std::int64_t>(grown));
        scope->metrics().add("refine.explorations");
        scope->metrics().set("refine.frontier",
                             static_cast<double>(frontier_.size()));
        scope->metrics().setMax("refine.peak_bytes",
                                static_cast<double>(peak_bytes_));
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             obs_start)
                             .count();
        if (seconds > 0.0)
            scope->metrics().setMax(
                "refine.states_per_second",
                static_cast<double>(grown) / seconds);
    }
#endif

    // Cold frontier rows past the byte cap park on disk until the
    // next expand() pages them back. Memory policy only — happens
    // after the fingerprint-visible state is final.
    maybeSpill();

    // Memoized closures may predate the new edges; recompute lazily.
    closure_.assign(numStates(), std::nullopt);
    return true;
}

void
StateSpace::refreshFrontier()
{
    frontier_.clear();
    for (std::uint32_t id = expanded_;
         id < static_cast<std::uint32_t>(numStates()); ++id)
        frontier_.push_back(id);
}

void
StateSpace::maybeSpill()
{
    if (spill_cap_bytes_ == 0 || width_ == 0 || complete())
        return;
    std::size_t row_bytes = std::size_t{width_} * sizeof(std::uint32_t);
    std::size_t pending = numStates() - expanded_;
    if (pending * row_bytes <= spill_cap_bytes_)
        return;
    // Keep the hottest rows (expanded first on resume) up to the cap;
    // spill the cold tail.
    std::size_t keep = spill_cap_bytes_ / row_bytes;
    std::uint32_t cut =
        expanded_ + static_cast<std::uint32_t>(keep);
    std::size_t words = (numStates() - cut) * std::size_t{width_};
    auto spill =
        detail::FrontierSpill::create(
            rows_.data() + std::size_t{cut} * width_, words);
    if (spill == nullptr)
        return;  // I/O trouble: degrade to keeping rows in RAM.
    spill_ = std::move(spill);
    spill_start_ = cut;
    rows_.resize(std::size_t{cut} * width_);
    spill_stats_.spills += 1;
    spill_stats_.spilled_bytes += words * sizeof(std::uint32_t);
    GRAPHITI_OBS_COUNT("refine.spills", 1);
    GRAPHITI_OBS_COUNT("refine.spilled_bytes",
                       static_cast<std::int64_t>(
                           words * sizeof(std::uint32_t)));
}

Result<bool>
StateSpace::pageBackSpill()
{
    if (spill_ == nullptr)
        return true;
    std::size_t words = spill_->words();
    std::size_t base = rows_.size();
    rows_.resize(base + words);
    if (!spill_->readWords(0, words, rows_.data() + base)) {
        rows_.resize(base);
        return err("failed to page back spilled frontier rows");
    }
    spill_stats_.pages_in += 1;
    spill_stats_.paged_in_bytes += words * sizeof(std::uint32_t);
    GRAPHITI_OBS_COUNT("refine.spill_pages_in", 1);
    spill_.reset();
    spill_start_ = 0;
    return true;
}

void
StateSpace::readRow(std::uint32_t s, std::uint32_t* out) const
{
    if (spill_ == nullptr || s < spill_start_) {
        const std::uint32_t* r = rows_.data() + std::size_t{s} * width_;
        std::copy(r, r + width_, out);
        return;
    }
    std::size_t off = std::size_t{s - spill_start_} * width_;
    if (!spill_->readWords(off, width_, out))
        throw std::runtime_error(
            "spilled frontier row unreadable for state " +
            std::to_string(s));
}

GraphState
StateSpace::decodeState(std::uint32_t s) const
{
    std::vector<std::uint32_t> row(width_);
    readRow(s, row.data());
    GraphState state;
    state.comps.reserve(width_);
    for (std::uint32_t id : row)
        state.comps.push_back(pool_.value(id));
    return state;
}

std::vector<std::uint32_t>
StateSpace::encodedRow(std::uint32_t s) const
{
    std::vector<std::uint32_t> row(width_);
    readRow(s, row.data());
    return row;
}

std::size_t
StateSpace::tokensInFlight(std::uint32_t s) const
{
    std::vector<std::uint32_t> row(width_);
    readRow(s, row.data());
    std::size_t n = 0;
    for (std::uint32_t id : row)
        n += pool_.tokensOf(id);
    return n;
}

const std::vector<std::uint32_t>&
StateSpace::internalClosure(std::uint32_t s) const
{
    if (closure_[s])
        return *closure_[s];
    std::vector<std::uint32_t> reach;
    std::vector<bool> seen(numStates(), false);
    std::deque<std::uint32_t> frontier{s};
    seen[s] = true;
    while (!frontier.empty()) {
        std::uint32_t cur = frontier.front();
        frontier.pop_front();
        reach.push_back(cur);
        for (std::uint32_t next : internalEdges(cur)) {
            if (!seen[next]) {
                seen[next] = true;
                frontier.push_back(next);
            }
        }
    }
    closure_[s] = std::move(reach);
    return *closure_[s];
}

void
StateSpace::precomputeClosures(ThreadPool& pool) const
{
    // Each lane writes only its own slots of closure_, so the fill is
    // race-free; afterwards internalClosure() never writes again.
    pool.parallelFor(numStates(), [&](std::size_t s) {
        if (closure_[s])
            return;
        std::vector<std::uint32_t> reach;
        std::vector<bool> seen(numStates(), false);
        std::deque<std::uint32_t> frontier{
            static_cast<std::uint32_t>(s)};
        seen[s] = true;
        while (!frontier.empty()) {
            std::uint32_t cur = frontier.front();
            frontier.pop_front();
            reach.push_back(cur);
            for (std::uint32_t next :
                 internalEdges(cur)) {
                if (!seen[next]) {
                    seen[next] = true;
                    frontier.push_back(next);
                }
            }
        }
        closure_[s] = std::move(reach);
    });
}

std::uint64_t
StateSpace::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a64(h, numStates());
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(numStates()); ++s) {
        h = fnv1a64(h, budget_[s]);
        EdgeSpan<std::uint32_t> ints = internalEdges(s);
        h = fnv1a64(h, ints.size());
        for (std::uint32_t dst : ints)
            h = fnv1a64(h, dst);
        EdgeSpan<InputEdge> ins = inputEdges(s);
        h = fnv1a64(h, ins.size());
        for (const InputEdge& e : ins) {
            h = fnv1a64(h, e.port_idx);
            h = fnv1a64(h, e.token_idx);
            h = fnv1a64(h, e.dst);
        }
        EdgeSpan<OutputEdge> outs = outputEdges(s);
        h = fnv1a64(h, outs.size());
        for (const OutputEdge& e : outs) {
            h = fnv1a64(h, e.port_idx);
            h = fnv1a64(h, e.token.toString());
            h = fnv1a64(h, e.dst);
        }
    }
    h = fnv1a64(h, frontier_.size());
    for (std::uint32_t s : frontier_)
        h = fnv1a64(h, s);
    return h;
}

std::size_t
StateSpace::approxBytes() const
{
    std::size_t bytes = sizeof(StateSpace);
    bytes += pool_.approxBytes();
    bytes += rows_.size() * sizeof(std::uint32_t);
    bytes += (int_off_.size() + in_off_.size() + out_off_.size()) *
             sizeof(std::uint32_t);
    bytes += int_flat_.size() * sizeof(std::uint32_t);
    bytes += in_flat_.size() * sizeof(InputEdge);
    bytes += out_flat_.size() * sizeof(OutputEdge);
    bytes += budget_.size() * sizeof(std::uint32_t);
    bytes += frontier_.size() * sizeof(std::uint32_t);
    return bytes;
}

StateSpace::MemoryBreakdown
StateSpace::breakdown() const
{
    MemoryBreakdown b;
    b.pool = pool_.approxBytes();
    b.rows = rows_.size() * sizeof(std::uint32_t);
    b.edges = (int_off_.size() + in_off_.size() + out_off_.size()) *
                  sizeof(std::uint32_t) +
              int_flat_.size() * sizeof(std::uint32_t) +
              in_flat_.size() * sizeof(InputEdge) +
              out_flat_.size() * sizeof(OutputEdge);
    b.spill = spillBytes();
    return b;
}

std::size_t
StateSpace::spillBytes() const
{
    return spill_ == nullptr ? 0 : spill_->bytes();
}

std::string
StateSpace::describeState(std::uint32_t s) const
{
    std::ostringstream os;
    os << "state " << s << " (budget " << budget_[s] << ")\n"
       << decodeState(s).toString();
    return os.str();
}

}  // namespace graphiti
