#include "refine/state_space.hpp"

#include <array>
#include <deque>
#include <sstream>

#include "obs/scope.hpp"

namespace graphiti {

InputDomain
InputDomain::uniform(const DenotedModule& mod, std::vector<Token> tokens)
{
    InputDomain d;
    for (const LowPortId& port : mod.inputNames())
        d.tokens[port] = tokens;
    return d;
}

namespace {

/** Dedup key: graph state plus remaining budget, with the hash cached
 * so the parallel successor phase pays for it instead of the
 * sequential merge. */
struct Key
{
    GraphState state;
    std::uint32_t budget = 0;
    std::size_t h = 0;

    Key() = default;
    Key(GraphState s, std::uint32_t b)
        : state(std::move(s)), budget(b), h(state.hash() * 31 + b)
    {
    }

    bool
    operator==(const Key& other) const
    {
        return h == other.h && budget == other.budget &&
               state == other.state;
    }
};

struct KeyHash
{
    std::size_t
    operator()(const Key& k) const
    {
        return k.h;
    }
};

/**
 * The state-interning table, sharded by key hash.
 *
 * During the parallel successor phase the table is *frozen*: workers
 * do read-only lookups (no locks needed — no writer exists until the
 * barrier). Inserts happen only in the sequential merge that follows,
 * so canonical ids are assigned in the exact order the sequential
 * worklist would have produced. Sharding keeps each map small (cache-
 * friendly merge) and lets reserve() spread one large allocation.
 */
class ShardedStateIndex
{
  public:
    void
    reserve(std::size_t total)
    {
        for (auto& shard : shards_)
            shard.reserve(total / kShards + 1);
    }

    std::optional<std::uint32_t>
    lookup(const Key& key) const
    {
        const auto& shard = shards_[shardOf(key.h)];
        auto it = shard.find(key);
        if (it == shard.end())
            return std::nullopt;
        return it->second;
    }

    void
    insert(Key key, std::uint32_t id)
    {
        shards_[shardOf(key.h)].emplace(std::move(key), id);
    }

    /**
     * Byte estimate of the table itself: entries (each shard holds
     * its own Key, i.e. a full copy of the state — @p deep_key_bytes
     * carries that sum), node and bucket-array overhead. Bucket
     * counts follow deterministically from the canonical insertion
     * sequence, but differ across standard libraries, so this figure
     * feeds resource accounting and never any verdict.
     */
    std::size_t
    approxBytes(std::size_t deep_key_bytes) const
    {
        // Unordered-map node: hash link + cached hash + payload.
        constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
        std::size_t bytes = deep_key_bytes;
        for (const auto& shard : shards_) {
            bytes += shard.size() *
                     (sizeof(std::pair<const Key, std::uint32_t>) +
                      kNodeOverhead);
            bytes += shard.bucket_count() * sizeof(void*);
        }
        return bytes;
    }

  private:
    static constexpr std::size_t kShards = 64;

    static std::size_t
    shardOf(std::size_t h)
    {
        // Use high bits: the maps consume the low bits for buckets.
        return (h >> 57) % kShards;
    }

    std::array<std::unordered_map<Key, std::uint32_t, KeyHash>, kShards>
        shards_;
};

/** One successor produced while expanding a state, recorded in the
 * exact order the sequential loop enumerates them. */
struct Succ
{
    enum class Kind : std::uint8_t { Internal, Input, Output };

    Kind kind = Kind::Internal;
    std::uint32_t port_idx = 0;
    std::uint32_t token_idx = 0;
    Token token;  ///< Output edges only.
    Key key;
    /** Hit in the frozen index, resolved during the parallel phase. */
    std::optional<std::uint32_t> known;
};

std::uint64_t
fnv1a64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1a64(std::uint64_t h, const std::string& s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace

Result<StateSpace>
StateSpace::explore(const DenotedModule& mod, const InputDomain& domain,
                    const ExplorationLimits& limits)
{
    Result<StateSpace> space = explorePartial(mod, domain, limits);
    if (!space.ok())
        return space.error();
    if (!space.value().complete()) {
        if (space.value().stopped())
            return err("state space exploration cancelled: " +
                       space.value().stopReason());
        return err("state space exploration exceeded max_states");
    }
    return space;
}

Result<StateSpace>
StateSpace::explorePartial(const DenotedModule& mod,
                           const InputDomain& domain,
                           const ExplorationLimits& limits)
{
    StateSpace space;
    space.stop_ = limits.stop;
    space.threads_ = ThreadPool::resolveThreads(limits.threads);
    space.in_ports_ = mod.inputNames();
    space.out_ports_ = mod.outputNames();
    for (const LowPortId& port : space.in_ports_) {
        auto it = domain.tokens.find(port);
        space.domain_tokens_.push_back(
            it == domain.tokens.end() ? std::vector<Token>{} : it->second);
    }
    space.concrete_.push_back(mod.initialState());
#if GRAPHITI_OBS_ENABLED
    space.state_bytes_ += space.concrete_.back().approxBytes();
#endif
    space.budget_.push_back(
        static_cast<std::uint32_t>(limits.input_budget));
    space.internal_.emplace_back();
    space.inputs_.emplace_back();
    space.outputs_.emplace_back();
    space.frontier_.push_back(0);

    Result<bool> expanded = space.expand(
        mod, std::max<std::size_t>(1, limits.max_states));
    if (!expanded.ok())
        return expanded.error();
    return space;
}

Result<bool>
StateSpace::resume(const DenotedModule& mod,
                   std::size_t additional_states)
{
    if (complete())
        return true;
    GRAPHITI_OBS_COUNT("refine.resumes", 1);
    GRAPHITI_OBS_VPROBE(recordResume());
    return expand(mod, concrete_.size() + additional_states);
}

Result<bool>
StateSpace::expand(const DenotedModule& mod, std::size_t max_states)
{
    GRAPHITI_OBS_TIMER(obs_timer, "refine.explore_seconds");
#if GRAPHITI_OBS_ENABLED
    std::size_t states_before = concrete_.size();
    auto obs_start = std::chrono::steady_clock::now();
    obs::VerifyProbe* probe = nullptr;
    if (obs::Scope* obs_scope = obs::current())
        probe = obs_scope->verifyProbe();
#endif
    // Rebuild the dedup index from the interned states; a parked
    // partial space carries no index, only its frontier. Reserve for
    // the whole run up front (capped — max_states defaults large).
    ShardedStateIndex index;
    index.reserve(std::max(concrete_.size(),
                           std::min<std::size_t>(max_states, 1 << 16)));
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(concrete_.size()); ++i)
        index.insert(Key{concrete_[i], budget_[i]}, i);

    std::deque<std::uint32_t> frontier(frontier_.begin(),
                                       frontier_.end());
    frontier_.clear();

    bool capped = false;
    auto intern = [&](Key key) -> std::optional<std::uint32_t> {
        if (auto hit = index.lookup(key))
            return *hit;
        if (concrete_.size() >= max_states) {
            capped = true;
            return std::nullopt;
        }
        std::uint32_t id = static_cast<std::uint32_t>(concrete_.size());
        concrete_.push_back(key.state);
        budget_.push_back(key.budget);
        internal_.emplace_back();
        inputs_.emplace_back();
        outputs_.emplace_back();
#if GRAPHITI_OBS_ENABLED
        state_bytes_ += key.state.approxBytes();
#endif
        index.insert(std::move(key), id);
        frontier.push_back(id);
        return id;
    };

#if GRAPHITI_OBS_ENABLED
    // Bounded-cadence progress publisher: once per frontier batch in
    // the parallel path, every kPublishEvery merges in the sequential
    // one, and once at the end — never per state. Observation only;
    // nothing here feeds back into exploration order.
    constexpr std::size_t kPublishEvery = 2048;
    auto obs_publish = [&] {
        std::size_t bytes =
            approxBytes() + index.approxBytes(state_bytes_);
        peak_bytes_ = std::max(peak_bytes_, bytes);
        if (probe == nullptr)
            return;
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             obs_start)
                             .count();
        std::size_t grown = concrete_.size() - states_before;
        probe->publishExplore(
            concrete_.size(), frontier.size() + frontier_.size(),
            seconds > 0.0 ? static_cast<double>(grown) / seconds : 0.0,
            100.0 * static_cast<double>(concrete_.size()) /
                static_cast<double>(max_states));
        probe->notePeakBytes(bytes);
    };
#endif

    // Enumerate the successors of one state in the canonical order
    // (internal, then inputs port/token-major, then outputs),
    // resolving each against the frozen index. Read-only on *this.
    auto enumerate = [&](std::uint32_t id) {
        std::vector<Succ> out;
        const GraphState& state = concrete_[id];
        std::uint32_t budget = budget_[id];
        for (GraphState& next : mod.internalSteps(state)) {
            Succ s;
            s.kind = Succ::Kind::Internal;
            s.key = Key{std::move(next), budget};
            out.push_back(std::move(s));
        }
        if (budget > 0) {
            for (std::uint32_t p = 0; p < in_ports_.size(); ++p) {
                const auto& toks = domain_tokens_[p];
                for (std::uint32_t t = 0; t < toks.size(); ++t) {
                    for (GraphState& next :
                         mod.inputStep(state, in_ports_[p], toks[t])) {
                        Succ s;
                        s.kind = Succ::Kind::Input;
                        s.port_idx = p;
                        s.token_idx = t;
                        s.key = Key{std::move(next), budget - 1};
                        out.push_back(std::move(s));
                    }
                }
            }
        }
        for (std::uint32_t p = 0; p < out_ports_.size(); ++p) {
            for (auto& [token, next] :
                 mod.outputStep(state, out_ports_[p])) {
                Succ s;
                s.kind = Succ::Kind::Output;
                s.port_idx = p;
                s.token = std::move(token);
                s.key = Key{std::move(next), budget};
                out.push_back(std::move(s));
            }
        }
        for (Succ& s : out)
            s.known = index.lookup(s.key);
        return out;
    };

    // Replay one expanded state's successors through intern() in
    // enumeration order — exactly what the sequential loop does
    // inline. Returns false when the state cap fired mid-state (its
    // edges are dropped and the state parked, same as before).
    auto merge = [&](std::uint32_t id, std::vector<Succ>& succs) {
        for (Succ& s : succs) {
            std::optional<std::uint32_t> dst =
                s.known ? s.known : intern(std::move(s.key));
            if (!dst) {
                internal_[id].clear();
                inputs_[id].clear();
                outputs_[id].clear();
                frontier_.push_back(id);
                return false;
            }
            switch (s.kind) {
            case Succ::Kind::Internal:
                internal_[id].push_back(*dst);
                break;
            case Succ::Kind::Input:
                inputs_[id].push_back(
                    InputEdge{s.port_idx, s.token_idx, *dst});
                break;
            case Succ::Kind::Output:
                outputs_[id].push_back(
                    OutputEdge{s.port_idx, std::move(s.token), *dst});
                break;
            }
        }
        return true;
    };

    stopped_ = false;
    stop_reason_.clear();
    if (threads_ <= 1) {
        // Sequential worklist — the canonical order every other mode
        // reproduces.
#if GRAPHITI_OBS_ENABLED
        std::size_t expanded_since_publish = 0;
#endif
        while (!frontier.empty() && !capped) {
            std::uint32_t id = frontier.front();
            frontier.pop_front();
            // Cooperative cancellation: park the state unexpanded,
            // like a cap, so the space stays resumable + edge-exact.
            if (stop_.stopRequested()) {
                stopped_ = true;
                stop_reason_ = stop_.reason();
                frontier_.push_back(id);
                break;
            }
            std::vector<Succ> succs = enumerate(id);
            merge(id, succs);
#if GRAPHITI_OBS_ENABLED
            if (++expanded_since_publish >= kPublishEvery) {
                expanded_since_publish = 0;
                obs_publish();
            }
#endif
        }
    } else {
        // Batched frontier expansion: compute successor lists for the
        // whole frontier in parallel against the frozen index, then
        // intern sequentially in frontier order. The frontier is in
        // sequential-FIFO order throughout, so the merge assigns the
        // same ids the sequential loop would (docs/parallelism.md).
        ThreadPool pool(threads_);
        while (!frontier.empty() && !capped && !stopped_) {
            std::vector<std::uint32_t> batch(frontier.begin(),
                                             frontier.end());
            frontier.clear();
            std::vector<std::vector<Succ>> succs(batch.size());
            pool.parallelFor(batch.size(), [&](std::size_t i) {
                succs[i] = enumerate(batch[i]);
            });
            for (std::size_t i = 0; i < batch.size(); ++i) {
                std::uint32_t id = batch[i];
                if (capped || stopped_) {
                    frontier_.push_back(id);
                    continue;
                }
                if (stop_.stopRequested()) {
                    stopped_ = true;
                    stop_reason_ = stop_.reason();
                    frontier_.push_back(id);
                    continue;
                }
                merge(id, succs[i]);
            }
#if GRAPHITI_OBS_ENABLED
            obs_publish();
#endif
        }
#if GRAPHITI_OBS_ENABLED
        // Lane occupancy of this expansion's pool — observation only,
        // aggregated so the cost is one snapshot per expand().
        if (obs::Scope* scope = obs::current()) {
            ThreadPool::PoolStats ps = pool.stats();
            std::uint64_t chunks = 0;
            std::uint64_t steals = 0;
            std::uint64_t idle_ns = 0;
            for (const ThreadPool::LaneStats& lane : ps.lanes) {
                chunks += lane.chunks;
                steals += lane.steals;
                idle_ns += lane.idle_ns;
            }
            scope->metrics().add(
                "pool.chunks", static_cast<std::int64_t>(chunks));
            scope->metrics().add(
                "pool.steals", static_cast<std::int64_t>(steals));
            scope->metrics().add(
                "pool.idle_ns", static_cast<std::int64_t>(idle_ns));
            scope->metrics().add(
                "pool.batches", static_cast<std::int64_t>(ps.batches));
        }
#endif
    }
    for (std::uint32_t id : frontier)
        frontier_.push_back(id);

#if GRAPHITI_OBS_ENABLED
    obs_publish();
    if (!frontier_.empty()) {
        // Exploration parked (cap or stop) with work left over.
        GRAPHITI_OBS_COUNT("refine.parks", 1);
        if (probe != nullptr)
            probe->recordPark();
    }
    if (obs::Scope* scope = obs::current()) {
        std::size_t grown = concrete_.size() - states_before;
        scope->metrics().add("refine.states",
                             static_cast<std::int64_t>(grown));
        scope->metrics().add("refine.explorations");
        scope->metrics().set("refine.frontier",
                             static_cast<double>(frontier_.size()));
        scope->metrics().setMax("refine.peak_bytes",
                                static_cast<double>(peak_bytes_));
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             obs_start)
                             .count();
        if (seconds > 0.0)
            scope->metrics().setMax(
                "refine.states_per_second",
                static_cast<double>(grown) / seconds);
    }
#endif

    // Memoized closures may predate the new edges; recompute lazily.
    closure_.assign(concrete_.size(), std::nullopt);
    return true;
}

const std::vector<std::uint32_t>&
StateSpace::internalClosure(std::uint32_t s) const
{
    if (closure_[s])
        return *closure_[s];
    std::vector<std::uint32_t> reach;
    std::vector<bool> seen(numStates(), false);
    std::deque<std::uint32_t> frontier{s};
    seen[s] = true;
    while (!frontier.empty()) {
        std::uint32_t cur = frontier.front();
        frontier.pop_front();
        reach.push_back(cur);
        for (std::uint32_t next : internal_[cur]) {
            if (!seen[next]) {
                seen[next] = true;
                frontier.push_back(next);
            }
        }
    }
    closure_[s] = std::move(reach);
    return *closure_[s];
}

void
StateSpace::precomputeClosures(ThreadPool& pool) const
{
    // Each lane writes only its own slots of closure_, so the fill is
    // race-free; afterwards internalClosure() never writes again.
    pool.parallelFor(numStates(), [&](std::size_t s) {
        if (closure_[s])
            return;
        std::vector<std::uint32_t> reach;
        std::vector<bool> seen(numStates(), false);
        std::deque<std::uint32_t> frontier{
            static_cast<std::uint32_t>(s)};
        seen[s] = true;
        while (!frontier.empty()) {
            std::uint32_t cur = frontier.front();
            frontier.pop_front();
            reach.push_back(cur);
            for (std::uint32_t next : internal_[cur]) {
                if (!seen[next]) {
                    seen[next] = true;
                    frontier.push_back(next);
                }
            }
        }
        closure_[s] = std::move(reach);
    });
}

std::uint64_t
StateSpace::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a64(h, numStates());
    for (std::uint32_t s = 0; s < numStates(); ++s) {
        h = fnv1a64(h, budget_[s]);
        h = fnv1a64(h, internal_[s].size());
        for (std::uint32_t dst : internal_[s])
            h = fnv1a64(h, dst);
        h = fnv1a64(h, inputs_[s].size());
        for (const InputEdge& e : inputs_[s]) {
            h = fnv1a64(h, e.port_idx);
            h = fnv1a64(h, e.token_idx);
            h = fnv1a64(h, e.dst);
        }
        h = fnv1a64(h, outputs_[s].size());
        for (const OutputEdge& e : outputs_[s]) {
            h = fnv1a64(h, e.port_idx);
            h = fnv1a64(h, e.token.toString());
            h = fnv1a64(h, e.dst);
        }
    }
    h = fnv1a64(h, frontier_.size());
    for (std::uint32_t s : frontier_)
        h = fnv1a64(h, s);
    return h;
}

std::size_t
StateSpace::approxBytes() const
{
    std::size_t bytes = sizeof(StateSpace);
    // Deep state content: incrementally maintained at intern time
    // (stays 0 when the build has observability compiled out — the
    // figure is then a shallow structural estimate only).
    bytes += state_bytes_;
    for (std::size_t s = 0; s < internal_.size(); ++s) {
        bytes += sizeof(internal_[s]) +
                 internal_[s].size() * sizeof(std::uint32_t);
        bytes += sizeof(inputs_[s]) +
                 inputs_[s].size() * sizeof(InputEdge);
        bytes += sizeof(outputs_[s]) +
                 outputs_[s].size() * sizeof(OutputEdge);
        bytes += sizeof(concrete_[s]);
    }
    bytes += budget_.size() * sizeof(std::uint32_t);
    bytes += frontier_.size() * sizeof(std::uint32_t);
    return bytes;
}

std::string
StateSpace::describeState(std::uint32_t s) const
{
    std::ostringstream os;
    os << "state " << s << " (budget " << budget_[s] << ")\n"
       << concrete_[s].toString();
    return os.str();
}

}  // namespace graphiti
