#include "refine/state_space.hpp"

#include <deque>
#include <sstream>

namespace graphiti {

InputDomain
InputDomain::uniform(const DenotedModule& mod, std::vector<Token> tokens)
{
    InputDomain d;
    for (const LowPortId& port : mod.inputNames())
        d.tokens[port] = tokens;
    return d;
}

namespace {

/** Dedup key: graph state plus remaining budget. */
struct Key
{
    GraphState state;
    std::uint32_t budget;

    bool operator==(const Key&) const = default;
};

struct KeyHash
{
    std::size_t
    operator()(const Key& k) const
    {
        return k.state.hash() * 31 + k.budget;
    }
};

}  // namespace

Result<StateSpace>
StateSpace::explore(const DenotedModule& mod, const InputDomain& domain,
                    const ExplorationLimits& limits)
{
    StateSpace space;
    space.in_ports_ = mod.inputNames();
    space.out_ports_ = mod.outputNames();
    for (const LowPortId& port : space.in_ports_) {
        auto it = domain.tokens.find(port);
        space.domain_tokens_.push_back(
            it == domain.tokens.end() ? std::vector<Token>{} : it->second);
    }

    std::unordered_map<Key, std::uint32_t, KeyHash> index;
    std::deque<std::uint32_t> frontier;

    auto intern = [&](GraphState state,
                      std::uint32_t budget) -> std::optional<std::uint32_t> {
        Key key{std::move(state), budget};
        auto it = index.find(key);
        if (it != index.end())
            return it->second;
        if (space.concrete_.size() >= limits.max_states)
            return std::nullopt;
        std::uint32_t id = static_cast<std::uint32_t>(
            space.concrete_.size());
        space.concrete_.push_back(key.state);
        space.budget_.push_back(budget);
        space.internal_.emplace_back();
        space.inputs_.emplace_back();
        space.outputs_.emplace_back();
        index.emplace(std::move(key), id);
        frontier.push_back(id);
        return id;
    };

    std::optional<std::uint32_t> init = intern(
        mod.initialState(), static_cast<std::uint32_t>(limits.input_budget));
    if (!init)
        return err("state space exploration exceeded max_states");

    while (!frontier.empty()) {
        std::uint32_t id = frontier.front();
        frontier.pop_front();
        // Copy, since intern() may reallocate concrete_.
        GraphState state = space.concrete_[id];
        std::uint32_t budget = space.budget_[id];

        for (GraphState& succ : mod.internalSteps(state)) {
            auto dst = intern(std::move(succ), budget);
            if (!dst)
                return err("state space exploration exceeded max_states");
            space.internal_[id].push_back(*dst);
        }
        if (budget > 0) {
            for (std::uint32_t p = 0; p < space.in_ports_.size(); ++p) {
                const auto& toks = space.domain_tokens_[p];
                for (std::uint32_t t = 0; t < toks.size(); ++t) {
                    for (GraphState& succ : mod.inputStep(
                             state, space.in_ports_[p], toks[t])) {
                        auto dst = intern(std::move(succ), budget - 1);
                        if (!dst)
                            return err("state space exploration exceeded "
                                       "max_states");
                        space.inputs_[id].push_back(InputEdge{p, t, *dst});
                    }
                }
            }
        }
        for (std::uint32_t p = 0; p < space.out_ports_.size(); ++p) {
            for (auto& [token, succ] :
                 mod.outputStep(state, space.out_ports_[p])) {
                auto dst = intern(std::move(succ), budget);
                if (!dst)
                    return err("state space exploration exceeded "
                               "max_states");
                space.outputs_[id].push_back(
                    OutputEdge{p, std::move(token), *dst});
            }
        }
    }

    space.closure_.resize(space.concrete_.size());
    return space;
}

const std::vector<std::uint32_t>&
StateSpace::internalClosure(std::uint32_t s) const
{
    if (closure_[s])
        return *closure_[s];
    std::vector<std::uint32_t> reach;
    std::vector<bool> seen(numStates(), false);
    std::deque<std::uint32_t> frontier{s};
    seen[s] = true;
    while (!frontier.empty()) {
        std::uint32_t cur = frontier.front();
        frontier.pop_front();
        reach.push_back(cur);
        for (std::uint32_t next : internal_[cur]) {
            if (!seen[next]) {
                seen[next] = true;
                frontier.push_back(next);
            }
        }
    }
    closure_[s] = std::move(reach);
    return *closure_[s];
}

std::string
StateSpace::describeState(std::uint32_t s) const
{
    std::ostringstream os;
    os << "state " << s << " (budget " << budget_[s] << ")\n"
       << concrete_[s].toString();
    return os.str();
}

}  // namespace graphiti
