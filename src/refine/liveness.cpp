#include "refine/liveness.hpp"

#include <vector>

namespace graphiti {

Result<DeadlockReport>
checkDeadlockFree(const DenotedModule& mod, const InputDomain& domain,
                  const ExplorationLimits& limits)
{
    Result<StateSpace> space = StateSpace::explore(mod, domain, limits);
    if (!space.ok())
        return space.error().context("checkDeadlockFree");
    const StateSpace& s = space.value();

    // Mark states that can (eventually, possibly with the
    // environment's help) make internal or output progress: a state
    // is live when it has an internal/output move, or an input move
    // into a live state. Budget-exhausted quiescent states are
    // horizon artifacts, not verdicts; only states with remaining
    // budget are flagged.
    std::vector<bool> live(s.numStates(), false);
    for (std::uint32_t id = 0; id < s.numStates(); ++id)
        live[id] = !s.internalEdges(id).empty() ||
                   !s.outputEdges(id).empty();
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t id = 0; id < s.numStates(); ++id) {
            if (live[id])
                continue;
            for (const StateSpace::InputEdge& edge : s.inputEdges(id)) {
                if (live[edge.dst]) {
                    live[id] = true;
                    changed = true;
                    break;
                }
            }
        }
    }

    DeadlockReport report;
    report.states_explored = s.numStates();
    for (std::uint32_t id = 0; id < s.numStates(); ++id) {
        if (live[id] || s.tokensInFlight(id) == 0 || s.budget(id) == 0)
            continue;
        report.deadlock_free = false;
        report.stuck_state = s.describeState(id);
        report.input_could_unblock = !s.inputEdges(id).empty();
        return report;
    }
    report.deadlock_free = true;
    return report;
}

}  // namespace graphiti
