#ifndef GRAPHITI_REFINE_TRACE_HPP
#define GRAPHITI_REFINE_TRACE_HPP

/**
 * @file
 * Randomized trace-inclusion testing.
 *
 * Section 4.4 proves that refinement implies trace-based behavior
 * inclusion. The trace tester exercises that implication directly on
 * instances too large for the exhaustive simulation solver: run the
 * implementation with randomized scheduling, record the I/O trace, and
 * search the specification for an execution with the same trace
 * (internal steps allowed anywhere). A trace the spec cannot replay is
 * a refinement counterexample.
 */

#include <vector>

#include "semantics/module.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"

namespace graphiti {

/** One externally visible event. */
struct IoEvent
{
    bool is_input = false;
    LowPortId port;
    Token token;

    std::string toString() const;
};

/** A finite I/O trace. */
using IoTrace = std::vector<IoEvent>;

/** Options for random trace generation. */
struct TraceGenOptions
{
    /** Maximum scheduling decisions taken. */
    std::size_t max_steps = 2000;
    /** Probability of attempting an input when one is possible. */
    double input_bias = 0.3;
    /** Maximum number of input events generated. */
    std::size_t max_inputs = 6;
};

/**
 * Run @p mod with random scheduling, feeding tokens drawn from
 * @p input_pool at random enabled inputs, and recording all I/O.
 */
IoTrace randomTrace(const DenotedModule& mod,
                    const std::vector<Token>& input_pool, Rng& rng,
                    const TraceGenOptions& options = {});

/**
 * Search @p spec for an execution exhibiting @p trace, interleaving
 * internal steps freely (on-the-fly subset construction).
 *
 * @param state_cap abort (returning an error) when the candidate
 *        state set exceeds this size.
 * @return true when the spec admits the trace.
 */
Result<bool> admitsTrace(const DenotedModule& spec, const IoTrace& trace,
                         std::size_t state_cap = 100000);

}  // namespace graphiti

#endif  // GRAPHITI_REFINE_TRACE_HPP
