#ifndef GRAPHITI_REFINE_STATE_SPACE_HPP
#define GRAPHITI_REFINE_STATE_SPACE_HPP

/**
 * @file
 * Finite-state exploration of denoted modules.
 *
 * The refinement checker needs the full transition system of a module
 * restricted to a finite instantiation: a finite token domain per
 * external input and a total budget of input tokens. Exploration
 * enumerates every reachable state and records internal, input and
 * output edges; the weak-simulation solver then works on these finite
 * graphs.
 *
 * The budget is part of the state, so both sides of a refinement
 * check consume inputs in lock-step (matched executions always agree
 * on the number of inputs consumed).
 *
 * Storage is compact (ROADMAP: billion-state engine, lever 1):
 * distinct component states are interned once into a StatePool and a
 * graph state is a fixed-width row of 32-bit pool ids; the dedup index
 * keys on (row, budget) instead of deep state copies; edges live in
 * CSR (offset + flat array) tables costing three integers per state;
 * and a parked frontier can spill its rows to an atomic temp file
 * (ExplorationLimits::spill_bytes) and page back on resume().
 *
 * Exploration parallelizes (ExplorationLimits::threads) without
 * changing the result: successor computation fans out over a
 * ThreadPool per frontier batch against a frozen pool + interning
 * table, and new states are then interned by one thread in the exact
 * order the sequential loop would have produced, so state ids, pool
 * ids — and every downstream verdict — are byte-identical at any
 * thread count (docs/parallelism.md).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "refine/state_pool.hpp"
#include "semantics/module.hpp"
#include "support/cancel.hpp"
#include "support/result.hpp"
#include "support/thread_pool.hpp"

namespace graphiti {

namespace detail {
class FrontierSpill;
}

/** Finite instantiation: tokens offered at each external input. */
struct InputDomain
{
    /** Per-port candidate tokens. */
    std::map<LowPortId, std::vector<Token>> tokens;

    /** Offer the same tokens at every input of @p mod. */
    static InputDomain uniform(const DenotedModule& mod,
                               std::vector<Token> tokens);
};

/** Exploration bounds. */
struct ExplorationLimits
{
    /** Abort when more states than this are reachable. */
    std::size_t max_states = 500000;
    /** Total number of input tokens consumed along any execution. */
    std::size_t input_budget = 3;
    /**
     * Worker lanes for frontier expansion (1 = the sequential loop,
     * 0 = hardware concurrency). Any value yields the same space.
     */
    std::size_t threads = 1;
    /**
     * Frontier spill cap in bytes (0 = never spill). When an
     * exploration parks (cap or stop) with more than this many bytes
     * of un-expanded state rows, the cold tail spills to an atomic
     * temp file and pages back on resume(). Pure memory policy: the
     * explored space, fingerprint and verdicts are unaffected.
     */
    std::size_t spill_bytes = 0;
    /**
     * Cooperative cancellation: exploration polls the token between
     * state expansions and parks the remaining frontier when it
     * fires. explore() then errors with the stop reason;
     * explorePartial() returns the partial space (stopped() true).
     */
    StopToken stop;
};

/** The explored transition system of one module instantiation. */
class StateSpace
{
  public:
    /** An input edge: consuming domain token @p token_idx at a port. */
    struct InputEdge
    {
        std::uint32_t port_idx;   ///< index into inputPorts()
        std::uint32_t token_idx;  ///< index into domain tokens
        std::uint32_t dst;
    };

    /** An output edge: emitting @p token at a port. */
    struct OutputEdge
    {
        std::uint32_t port_idx;  ///< index into outputPorts()
        Token token;
        std::uint32_t dst;
    };

    /** Read-only view of one state's edges inside a CSR table. */
    template <typename T>
    class EdgeSpan
    {
      public:
        EdgeSpan() = default;
        EdgeSpan(const T* first, const T* last)
            : first_(first), last_(last)
        {
        }

        const T* begin() const { return first_; }
        const T* end() const { return last_; }
        std::size_t size() const
        {
            return static_cast<std::size_t>(last_ - first_);
        }
        bool empty() const { return first_ == last_; }
        const T& operator[](std::size_t i) const { return first_[i]; }

      private:
        const T* first_ = nullptr;
        const T* last_ = nullptr;
    };

    /** Where the bytes of a space live (all size-based estimates). */
    struct MemoryBreakdown
    {
        std::size_t pool = 0;   ///< interned CompState arena + index
        std::size_t rows = 0;   ///< encoded id rows resident in RAM
        std::size_t edges = 0;  ///< CSR offset + flat edge arrays
        std::size_t spill = 0;  ///< frontier rows parked on disk
    };

    /** Spill-tier activity counters (docs/verification_observability.md). */
    struct SpillStats
    {
        std::size_t spills = 0;          ///< park-time spill events
        std::size_t pages_in = 0;        ///< resume-time page-backs
        std::size_t spilled_bytes = 0;   ///< total bytes written
        std::size_t paged_in_bytes = 0;  ///< total bytes read back
    };

    StateSpace();
    ~StateSpace();
    StateSpace(StateSpace&&) noexcept;
    StateSpace& operator=(StateSpace&&) noexcept;

    /**
     * Explore @p mod under @p domain and @p limits.
     * Fails when max_states is exceeded.
     */
    static Result<StateSpace> explore(const DenotedModule& mod,
                                      const InputDomain& domain,
                                      const ExplorationLimits& limits);

    /**
     * Memory-bounded exploration: like explore, but when max_states
     * is reached the partial space is returned (complete() == false)
     * with the unexpanded states saved as a resumable frontier
     * instead of aborting. Edges recorded so far are exact; states on
     * the frontier simply have none yet.
     */
    static Result<StateSpace> explorePartial(
        const DenotedModule& mod, const InputDomain& domain,
        const ExplorationLimits& limits);

    /** True when every reachable state has been expanded. */
    bool complete() const { return expanded_ == budget_.size(); }

    /** True when the last expansion stopped on the limits' StopToken
     * (as opposed to filling max_states). */
    bool stopped() const { return stopped_; }

    /** Why the exploration stopped; empty unless stopped(). */
    const std::string& stopReason() const { return stop_reason_; }

    /** State ids still awaiting expansion (empty when complete).
     * States are expanded FIFO in interning order, so this is always
     * the contiguous id range [firstPending(), numStates()). */
    const std::vector<std::uint32_t>& pendingFrontier() const
    {
        return frontier_;
    }

    /**
     * Continue a partial exploration of @p mod with room for
     * @p additional_states more states. Rebuilds the dedup index from
     * the states already interned (and pages back any spilled frontier
     * rows first), so a parked space costs no index memory while
     * parked. Resuming to completion yields exactly the state space a
     * one-shot explore would have built — same pool ids included.
     */
    Result<bool> resume(const DenotedModule& mod,
                        std::size_t additional_states);

    /** Replace the stop token consulted by resume() — e.g. to resume
     * a space whose exploration was parked by a fired token. */
    void setStopToken(StopToken stop) { stop_ = std::move(stop); }

    std::size_t numStates() const { return budget_.size(); }
    std::uint32_t initialState() const { return 0; }

    EdgeSpan<std::uint32_t> internalEdges(std::uint32_t s) const
    {
        return edgeSpan(int_off_, int_flat_, s);
    }
    EdgeSpan<InputEdge> inputEdges(std::uint32_t s) const
    {
        return edgeSpan(in_off_, in_flat_, s);
    }
    EdgeSpan<OutputEdge> outputEdges(std::uint32_t s) const
    {
        return edgeSpan(out_off_, out_flat_, s);
    }

    /** Remaining input budget in state @p s. */
    std::uint32_t budget(std::uint32_t s) const { return budget_[s]; }

    /** Port tables shared with the sibling space in a check. */
    const std::vector<LowPortId>& inputPorts() const { return in_ports_; }
    const std::vector<LowPortId>& outputPorts() const
    {
        return out_ports_;
    }
    /** Domain tokens offered at input port @p port_idx. */
    const std::vector<Token>& domainTokens(std::uint32_t port_idx) const
    {
        return domain_tokens_[port_idx];
    }

    /**
     * States reachable from @p s by zero or more internal transitions
     * (the weak closure int*), memoized.
     */
    const std::vector<std::uint32_t>& internalClosure(std::uint32_t s) const;

    /**
     * Fill the closure memo for every state, fanning the per-state
     * BFS out over @p pool. Must be called before any multi-threaded
     * consumer of internalClosure(): the lazy memo write is not
     * thread-safe, but pre-filled entries are immutable thereafter.
     */
    void precomputeClosures(ThreadPool& pool) const;

    /**
     * Deterministic structural digest of the explored space (states,
     * budgets, all three edge kinds, frontier). Two explorations that
     * built the same space — e.g. at different thread counts, with or
     * without spilling, or park+resume vs one-shot — agree on this
     * value, and it is unchanged from the pre-encoding digest.
     */
    std::uint64_t fingerprint() const;

    /** Pretty-printed concrete state, for counterexamples. Decodes
     * the id row on demand (reading the spill file if the state is
     * parked on disk). */
    std::string describeState(std::uint32_t s) const;

    /** Tokens held anywhere inside the concrete state @p s. */
    std::size_t tokensInFlight(std::uint32_t s) const;

    /** The per-exploration component-state intern pool. */
    const StatePool& pool() const { return pool_; }

    /** Pool-id row encoding state @p s (spill-reading like
     * describeState); row length is the module's component count. */
    std::vector<std::uint32_t> encodedRow(std::uint32_t s) const;

    /**
     * Size-based RAM estimate of the explored space: the interned
     * component pool, encoded id rows, CSR edge tables, budgets and
     * the parked frontier. Deliberately counts sizes rather than
     * capacities, so the figure is a pure function of the space —
     * equal at any thread count and stable per seed
     * (docs/verification_observability.md). Spilled rows are excluded
     * (they are not in RAM); see spillBytes() and breakdown(). The
     * dedup index lives only inside expand(), so a parked partial
     * space costs exactly this.
     */
    std::size_t approxBytes() const;

    /** Per-tier decomposition of the space's footprint. */
    MemoryBreakdown breakdown() const;

    /** Bytes of frontier rows currently parked in the spill file. */
    std::size_t spillBytes() const;

    /** Cumulative spill-tier activity for this space. */
    const SpillStats& spillStats() const { return spill_stats_; }

    /** High-water approxBytes() + dedup-index + spill-file estimate
     * seen by any expansion of this space (0 until instrumentation
     * observed it; maintained only when the build has GRAPHITI_OBS
     * on). */
    std::size_t peakBytes() const { return peak_bytes_; }

  private:
    /** The shared worklist loop behind explore/explorePartial/resume:
     * expand frontier states until done or @p max_states interned. */
    Result<bool> expand(const DenotedModule& mod,
                        std::size_t max_states);

    template <typename T>
    EdgeSpan<T>
    edgeSpan(const std::vector<std::uint32_t>& off,
             const std::vector<T>& flat, std::uint32_t s) const
    {
        if (s >= expanded_)
            return {};
        return {flat.data() + off[s], flat.data() + off[s + 1]};
    }

    /** First state id with no stamped edges yet (== numStates() when
     * complete). The pending frontier is [expanded_, numStates()). */
    std::uint32_t firstPending() const { return expanded_; }

    /** Decode state @p s into its id row (RAM or spill file). */
    void readRow(std::uint32_t s, std::uint32_t* out) const;
    /** Materialize the concrete GraphState of @p s. */
    GraphState decodeState(std::uint32_t s) const;
    /** Rebuild frontier_ as [expanded_, numStates()). */
    void refreshFrontier();
    /** Park-time spill of cold frontier rows past the byte cap. */
    void maybeSpill();
    /** Resume-time page-back of every spilled row. */
    Result<bool> pageBackSpill();

    StopToken stop_;
    bool stopped_ = false;
    std::string stop_reason_;
    std::size_t threads_ = 1;
    std::size_t spill_cap_bytes_ = 0;
    std::size_t peak_bytes_ = 0;

    StatePool pool_;
    /** Components per state; every row is exactly this wide. */
    std::uint32_t width_ = 0;
    /** Encoded rows, one per resident state, in one flat array
     * (rows_[s * width_ .. (s+1) * width_)). States >= spillStart()
     * live in the spill file instead. */
    std::vector<std::uint32_t> rows_;
    std::vector<std::uint32_t> budget_;

    /** CSR edge tables: state s < expanded_ owns the flat range
     * [off[s], off[s+1]); frontier states have no edges yet. */
    std::uint32_t expanded_ = 0;
    std::vector<std::uint32_t> int_off_;
    std::vector<std::uint32_t> int_flat_;
    std::vector<std::uint32_t> in_off_;
    std::vector<InputEdge> in_flat_;
    std::vector<std::uint32_t> out_off_;
    std::vector<OutputEdge> out_flat_;

    /** Materialized [expanded_, numStates()) for pendingFrontier(). */
    std::vector<std::uint32_t> frontier_;

    std::unique_ptr<detail::FrontierSpill> spill_;
    /** First state id whose row lives in the spill file (meaningful
     * only while spill_ is non-null; always >= expanded_). */
    std::uint32_t spill_start_ = 0;
    SpillStats spill_stats_;

    std::vector<LowPortId> in_ports_;
    std::vector<LowPortId> out_ports_;
    std::vector<std::vector<Token>> domain_tokens_;
    mutable std::vector<std::optional<std::vector<std::uint32_t>>>
        closure_;
};

}  // namespace graphiti

#endif  // GRAPHITI_REFINE_STATE_SPACE_HPP
