#ifndef GRAPHITI_REFINE_STATE_SPACE_HPP
#define GRAPHITI_REFINE_STATE_SPACE_HPP

/**
 * @file
 * Finite-state exploration of denoted modules.
 *
 * The refinement checker needs the full transition system of a module
 * restricted to a finite instantiation: a finite token domain per
 * external input and a total budget of input tokens. Exploration
 * enumerates every reachable state and records internal, input and
 * output edges; the weak-simulation solver then works on these finite
 * graphs.
 *
 * The budget is part of the state, so both sides of a refinement
 * check consume inputs in lock-step (matched executions always agree
 * on the number of inputs consumed).
 *
 * Exploration parallelizes (ExplorationLimits::threads) without
 * changing the result: successor computation fans out over a
 * ThreadPool per frontier batch against a frozen interning table,
 * and new states are then interned by one thread in the exact order
 * the sequential loop would have produced, so state ids — and every
 * downstream verdict — are byte-identical at any thread count
 * (docs/parallelism.md).
 */

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "semantics/module.hpp"
#include "support/cancel.hpp"
#include "support/result.hpp"
#include "support/thread_pool.hpp"

namespace graphiti {

/** Finite instantiation: tokens offered at each external input. */
struct InputDomain
{
    /** Per-port candidate tokens. */
    std::map<LowPortId, std::vector<Token>> tokens;

    /** Offer the same tokens at every input of @p mod. */
    static InputDomain uniform(const DenotedModule& mod,
                               std::vector<Token> tokens);
};

/** Exploration bounds. */
struct ExplorationLimits
{
    /** Abort when more states than this are reachable. */
    std::size_t max_states = 200000;
    /** Total number of input tokens consumed along any execution. */
    std::size_t input_budget = 3;
    /**
     * Worker lanes for frontier expansion (1 = the sequential loop,
     * 0 = hardware concurrency). Any value yields the same space.
     */
    std::size_t threads = 1;
    /**
     * Cooperative cancellation: exploration polls the token between
     * state expansions and parks the remaining frontier when it
     * fires. explore() then errors with the stop reason;
     * explorePartial() returns the partial space (stopped() true).
     */
    StopToken stop;
};

/** The explored transition system of one module instantiation. */
class StateSpace
{
  public:
    /** An input edge: consuming domain token @p token_idx at a port. */
    struct InputEdge
    {
        std::uint32_t port_idx;   ///< index into inputPorts()
        std::uint32_t token_idx;  ///< index into domain tokens
        std::uint32_t dst;
    };

    /** An output edge: emitting @p token at a port. */
    struct OutputEdge
    {
        std::uint32_t port_idx;  ///< index into outputPorts()
        Token token;
        std::uint32_t dst;
    };

    /**
     * Explore @p mod under @p domain and @p limits.
     * Fails when max_states is exceeded.
     */
    static Result<StateSpace> explore(const DenotedModule& mod,
                                      const InputDomain& domain,
                                      const ExplorationLimits& limits);

    /**
     * Memory-bounded exploration: like explore, but when max_states
     * is reached the partial space is returned (complete() == false)
     * with the unexpanded states saved as a resumable frontier
     * instead of aborting. Edges recorded so far are exact; states on
     * the frontier simply have none yet.
     */
    static Result<StateSpace> explorePartial(
        const DenotedModule& mod, const InputDomain& domain,
        const ExplorationLimits& limits);

    /** True when every reachable state has been expanded. */
    bool complete() const { return frontier_.empty(); }

    /** True when the last expansion stopped on the limits' StopToken
     * (as opposed to filling max_states). */
    bool stopped() const { return stopped_; }

    /** Why the exploration stopped; empty unless stopped(). */
    const std::string& stopReason() const { return stop_reason_; }

    /** State ids still awaiting expansion (empty when complete). */
    const std::vector<std::uint32_t>& pendingFrontier() const
    {
        return frontier_;
    }

    /**
     * Continue a partial exploration of @p mod with room for
     * @p additional_states more states. Rebuilds the dedup index from
     * the states already interned, so resuming a space costs no extra
     * memory while it is parked. Resuming to completion yields
     * exactly the state space a one-shot explore would have built.
     */
    Result<bool> resume(const DenotedModule& mod,
                        std::size_t additional_states);

    /** Replace the stop token consulted by resume() — e.g. to resume
     * a space whose exploration was parked by a fired token. */
    void setStopToken(StopToken stop) { stop_ = std::move(stop); }

    std::size_t numStates() const { return internal_.size(); }
    std::uint32_t initialState() const { return 0; }

    const std::vector<std::uint32_t>&
    internalEdges(std::uint32_t s) const
    {
        return internal_[s];
    }
    const std::vector<InputEdge>& inputEdges(std::uint32_t s) const
    {
        return inputs_[s];
    }
    const std::vector<OutputEdge>& outputEdges(std::uint32_t s) const
    {
        return outputs_[s];
    }

    /** Remaining input budget in state @p s. */
    std::uint32_t budget(std::uint32_t s) const { return budget_[s]; }

    /** Port tables shared with the sibling space in a check. */
    const std::vector<LowPortId>& inputPorts() const { return in_ports_; }
    const std::vector<LowPortId>& outputPorts() const
    {
        return out_ports_;
    }
    /** Domain tokens offered at input port @p port_idx. */
    const std::vector<Token>& domainTokens(std::uint32_t port_idx) const
    {
        return domain_tokens_[port_idx];
    }

    /**
     * States reachable from @p s by zero or more internal transitions
     * (the weak closure int*), memoized.
     */
    const std::vector<std::uint32_t>& internalClosure(std::uint32_t s) const;

    /**
     * Fill the closure memo for every state, fanning the per-state
     * BFS out over @p pool. Must be called before any multi-threaded
     * consumer of internalClosure(): the lazy memo write is not
     * thread-safe, but pre-filled entries are immutable thereafter.
     */
    void precomputeClosures(ThreadPool& pool) const;

    /**
     * Deterministic structural digest of the explored space (states,
     * budgets, all three edge kinds, frontier). Two explorations that
     * built the same space — e.g. at different thread counts, or
     * park+resume vs one-shot — agree on this value.
     */
    std::uint64_t fingerprint() const;

    /** Pretty-printed concrete state, for counterexamples. */
    std::string describeState(std::uint32_t s) const;

    /** Tokens held anywhere inside the concrete state @p s. */
    std::size_t tokensInFlight(std::uint32_t s) const
    {
        return concrete_[s].totalTokens();
    }

    /**
     * Size-based byte estimate of the explored space: interned
     * concrete states (deep), all three edge tables, budgets and the
     * parked frontier. Deliberately counts sizes rather than
     * capacities, so the figure is a pure function of the space —
     * equal at any thread count and stable per seed
     * (docs/verification_observability.md). A parked partial space
     * costs exactly this: the dedup index lives only inside expand().
     */
    std::size_t approxBytes() const;

    /** High-water approxBytes() + dedup-index estimate seen by any
     * expansion of this space (0 until instrumentation observed it;
     * maintained only when the build has GRAPHITI_OBS on). */
    std::size_t peakBytes() const { return peak_bytes_; }

  private:
    /** The shared worklist loop behind explore/explorePartial/resume:
     * expand frontier states until done or @p max_states interned. */
    Result<bool> expand(const DenotedModule& mod,
                        std::size_t max_states);

    StopToken stop_;
    bool stopped_ = false;
    std::string stop_reason_;
    std::size_t threads_ = 1;
    /** Running sum of concrete_[i].approxBytes() (incremental: deep
     * state scans happen once, at intern time). */
    std::size_t state_bytes_ = 0;
    std::size_t peak_bytes_ = 0;
    std::vector<std::vector<std::uint32_t>> internal_;
    std::vector<std::vector<InputEdge>> inputs_;
    std::vector<std::vector<OutputEdge>> outputs_;
    std::vector<std::uint32_t> budget_;
    std::vector<std::uint32_t> frontier_;
    std::vector<GraphState> concrete_;
    std::vector<LowPortId> in_ports_;
    std::vector<LowPortId> out_ports_;
    std::vector<std::vector<Token>> domain_tokens_;
    mutable std::vector<std::optional<std::vector<std::uint32_t>>>
        closure_;
};

}  // namespace graphiti

#endif  // GRAPHITI_REFINE_STATE_SPACE_HPP
