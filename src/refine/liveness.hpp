#ifndef GRAPHITI_REFINE_LIVENESS_HPP
#define GRAPHITI_REFINE_LIVENESS_HPP

/**
 * @file
 * Bounded deadlock-freedom checking.
 *
 * The evaluation flow relies on a buffer placement strategy "to
 * prevent deadlocks" (section 6.1); this checker is the diagnostic
 * companion: it explores a module's finite instantiation and reports
 * any reachable state that still holds tokens but can make no internal
 * or output progress — a deadlock unless further *input* would unblock
 * it (which the report distinguishes).
 */

#include "refine/state_space.hpp"

namespace graphiti {

/** Outcome of a deadlock search. */
struct DeadlockReport
{
    /** No reachable token-holding state is stuck. */
    bool deadlock_free = false;
    /** A stuck state description (empty when deadlock_free). */
    std::string stuck_state;
    /** Whether the stuck state could still accept input (so the
     * deadlock only manifests once the environment stops feeding). */
    bool input_could_unblock = false;
    std::size_t states_explored = 0;
};

/**
 * Search for reachable stuck states of @p mod under @p domain.
 * A state is stuck when it holds tokens but enables no internal and no
 * output transition.
 */
Result<DeadlockReport> checkDeadlockFree(const DenotedModule& mod,
                                         const InputDomain& domain,
                                         const ExplorationLimits& limits);

}  // namespace graphiti

#endif  // GRAPHITI_REFINE_LIVENESS_HPP
