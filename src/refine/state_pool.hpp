#ifndef GRAPHITI_REFINE_STATE_POOL_HPP
#define GRAPHITI_REFINE_STATE_POOL_HPP

/**
 * @file
 * Interned component-state pool for compact state encoding.
 *
 * A graph state is the product of its components' states, and in
 * practice the factors repeat massively: most components of an
 * out-of-order loop sit in the same handful of idle/steady states
 * across millions of product states. The pool interns each distinct
 * CompState value once per exploration; a graph state then encodes as
 * a fixed-width row of 32-bit pool ids, and hashing a state becomes a
 * cheap walk over ids instead of a deep walk over queues and tokens.
 *
 * Determinism contract (docs/parallelism.md): ids are assigned in
 * first-intern order, and all interning happens in the sequential
 * merge phase of exploration — the parallel successor phase only calls
 * the read-only find() against the frozen pool. Exploration order is
 * canonical at any thread count, so pool ids are too, and every
 * id-derived hash, shard assignment and index layout follows suit.
 */

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "semantics/state.hpp"

namespace graphiti {

/** Append-only intern table for CompState values. */
class StatePool
{
  public:
    /** Id of @p comp, interning it on first sight. Ids are dense and
     * assigned in call order (canonical under the merge-phase-only
     * contract above). */
    std::uint32_t intern(const CompState& comp);

    /** Id of @p comp if already interned. Read-only and safe to call
     * concurrently with other find()s while no intern() runs — the
     * frozen-pool lookup of the parallel successor phase. */
    std::optional<std::uint32_t> find(const CompState& comp) const;

    /** The interned value for @p id. */
    const CompState& value(std::uint32_t id) const
    {
        return values_[id];
    }

    /** Cached totalTokens() of the interned value. */
    std::size_t tokensOf(std::uint32_t id) const { return tokens_[id]; }

    /** Number of distinct component states interned. */
    std::size_t size() const { return values_.size(); }

    /**
     * Size-based byte estimate of the pool: deep interned values plus
     * the hash index (entries and buckets). Maintained incrementally
     * at intern time, so reading it is O(1). Values follow the same
     * capacity-independent accounting as CompState::approxBytes, so
     * the figure is a pure function of the interned set
     * (docs/verification_observability.md).
     */
    std::size_t approxBytes() const;

  private:
    std::optional<std::uint32_t> findHashed(const CompState& comp,
                                            std::size_t h) const;

    std::vector<CompState> values_;
    std::vector<std::size_t> tokens_;
    /** CompState::hash() -> candidate ids (deep-compare on collision). */
    std::unordered_map<std::size_t, std::vector<std::uint32_t>> index_;
    /** Running sum of values_[i].approxBytes(). */
    std::size_t value_bytes_ = 0;
};

}  // namespace graphiti

#endif  // GRAPHITI_REFINE_STATE_POOL_HPP
