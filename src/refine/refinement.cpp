#include "refine/refinement.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/scope.hpp"

namespace graphiti {

namespace {

using PairKey = std::uint64_t;

PairKey
pairKey(std::uint32_t impl_state, std::uint32_t spec_state)
{
    return (static_cast<std::uint64_t>(impl_state) << 32) | spec_state;
}

/**
 * The simulation game over reachable pairs.
 *
 * Pairs are discovered forward from the initial pair: every attacker
 * (impl) move generates all defender (spec) responses as candidate
 * pairs. The greatest fixpoint then prunes pairs with an unmatched
 * attacker move; pruning iterates because a response may itself die.
 *
 * Both phases parallelize without changing the verdict (threads > 1):
 * discovery expands pair frontiers level by level, computing response
 * sets in parallel and merging them in frontier order; pruning
 * partitions the alive set per fixpoint round — the kill set is a
 * pure function of the round's alive set, so partition boundaries
 * cannot change it — with a barrier between rounds. Spec closures
 * (and the frontier-touch memo) are precomputed before the first
 * parallel phase because their lazy memos are not thread-safe.
 */
class SimulationGame
{
  public:
    SimulationGame(const StateSpace& impl, const StateSpace& spec,
                   bool optimistic, StopToken stop, std::size_t threads)
        : impl_(impl), spec_(spec), optimistic_(optimistic),
          stop_(std::move(stop)),
          pool_(ThreadPool::resolveThreads(threads))
    {
        for (std::uint32_t s : spec.pendingFrontier())
            spec_frontier_.insert(s);
        touches_.assign(spec_.numStates(), -1);
#if GRAPHITI_OBS_ENABLED
        if (obs::Scope* obs_scope = obs::current())
            probe_ = obs_scope->verifyProbe();
#endif
        if (pool_.size() > 1) {
            spec_.precomputeClosures(pool_);
            if (optimistic_ && !spec_frontier_.empty()) {
                pool_.parallelFor(spec_.numStates(), [&](std::size_t t) {
                    closureTouchesFrontier(
                        static_cast<std::uint32_t>(t));
                });
            }
        }
    }

    Result<RefinementReport>
    run()
    {
        if (!discover() || !prune())
            return err("refinement game cancelled: " + stop_.reason());

        RefinementReport report;
        report.impl_states = impl_.numStates();
        report.spec_states = spec_.numStates();
        report.reachable_pairs = alive_.size() + dead_.size();
        report.fixpoint_iterations = iterations_;
#if GRAPHITI_OBS_ENABLED
        obsPublish();
        report.peak_bytes = peak_bytes_;
        // Lane occupancy of the game's pool — one snapshot per game.
        if (obs::Scope* scope = obs::current()) {
            ThreadPool::PoolStats ps = pool_.stats();
            std::uint64_t chunks = 0;
            std::uint64_t steals = 0;
            std::uint64_t idle_ns = 0;
            for (const ThreadPool::LaneStats& lane : ps.lanes) {
                chunks += lane.chunks;
                steals += lane.steals;
                idle_ns += lane.idle_ns;
            }
            scope->metrics().add(
                "pool.chunks", static_cast<std::int64_t>(chunks));
            scope->metrics().add(
                "pool.steals", static_cast<std::int64_t>(steals));
            scope->metrics().add(
                "pool.idle_ns", static_cast<std::int64_t>(idle_ns));
            scope->metrics().add(
                "pool.batches", static_cast<std::int64_t>(ps.batches));
        }
#endif
        PairKey initial = pairKey(impl_.initialState(),
                                  spec_.initialState());
        report.refines = alive_.count(initial) > 0;
        if (!report.refines)
            report.counterexample = attackStrategy(initial);
        return report;
    }

    /**
     * Reconstruct the attacker's winning strategy from the initial
     * pair: at each dead pair, play the recorded unmatched move and
     * descend into a representative dead response (when the move had
     * responses at all). This is the counterexample a user debugs
     * with: the impl move sequence the spec cannot follow.
     */
    std::string
    attackStrategy(PairKey initial) const
    {
        std::ostringstream os;
        PairKey at = initial;
        for (int depth = 0; depth < 32; ++depth) {
            auto why = reason_.find(at);
            if (why == reason_.end()) {
                os << "  (pair not reachable in the game)\n";
                break;
            }
            os << "  step " << depth << ": " << why->second << "\n";
            auto next = descend_.find(at);
            if (next == descend_.end())
                break;  // the move had no surviving-or-dead responses
            at = next->second;
        }
        return os.str();
    }

  private:
    /**
     * Defender responses to each attacker move from pair (s, t).
     * Invokes @p on_move once per attacker move with the vector of
     * response pairs and a label for diagnostics.
     */
    template <typename Fn>
    void
    forEachAttackerMove(std::uint32_t s, std::uint32_t t, Fn on_move) const
    {
        // Internal moves (definition 4.3).
        for (std::uint32_t s_next : impl_.internalEdges(s)) {
            std::vector<PairKey> responses;
            for (std::uint32_t t_next : spec_.internalClosure(t))
                responses.push_back(pairKey(s_next, t_next));
            on_move(responses, [&] {
                return "internal step of impl (" +
                       std::to_string(s) + " -> " +
                       std::to_string(s_next) + ")";
            });
        }
        // Input moves (definition 4.1): spec takes the same input,
        // then any number of internal steps.
        for (const StateSpace::InputEdge& edge : impl_.inputEdges(s)) {
            std::vector<PairKey> responses;
            for (const StateSpace::InputEdge& spec_edge :
                 spec_.inputEdges(t)) {
                if (spec_edge.port_idx != edge.port_idx ||
                    spec_edge.token_idx != edge.token_idx)
                    continue;
                for (std::uint32_t t_next :
                     spec_.internalClosure(spec_edge.dst))
                    responses.push_back(pairKey(edge.dst, t_next));
            }
            on_move(responses, [&] {
                return "input of " +
                       impl_.domainTokens(edge.port_idx)[edge.token_idx]
                           .toString() +
                       " at " +
                       impl_.inputPorts()[edge.port_idx].toString();
            });
        }
        // Output moves (definition 4.2): spec runs internal steps
        // *first*, then emits the identical token at the same port.
        for (const StateSpace::OutputEdge& edge : impl_.outputEdges(s)) {
            std::vector<PairKey> responses;
            for (std::uint32_t t_mid : spec_.internalClosure(t)) {
                for (const StateSpace::OutputEdge& spec_edge :
                     spec_.outputEdges(t_mid)) {
                    if (spec_edge.port_idx == edge.port_idx &&
                        spec_edge.token == edge.token)
                        responses.push_back(
                            pairKey(edge.dst, spec_edge.dst));
                }
            }
            on_move(responses, [&] {
                return "output of " + edge.token.toString() + " at " +
                       impl_.outputPorts()[edge.port_idx].toString();
            });
        }
    }

    /** Does the weak closure of spec state @p t touch an unexpanded
     * frontier state (whose edges are unknown)? Memoized; the memo is
     * pre-filled for every state before parallel pruning starts. */
    bool
    closureTouchesFrontier(std::uint32_t t) const
    {
        if (spec_frontier_.empty())
            return false;
        if (touches_[t] >= 0)
            return touches_[t] != 0;
        bool touches = false;
        for (std::uint32_t u : spec_.internalClosure(t)) {
            if (spec_frontier_.count(u) > 0) {
                touches = true;
                break;
            }
        }
        touches_[t] = touches ? 1 : 0;
        return touches;
    }

    bool
    discover()
    {
        PairKey initial = pairKey(impl_.initialState(),
                                  spec_.initialState());
        alive_.insert(initial);
        // Level-synchronized BFS: response sets for one frontier level
        // are computed in parallel (read-only on the spaces), then
        // merged into alive_ in level order — the same insertion
        // sequence the sequential FIFO loop produces.
        std::vector<PairKey> level{initial};
        while (!level.empty()) {
            if (stop_.stopRequested())
                return false;
            std::vector<std::vector<PairKey>> found(level.size());
            pool_.parallelFor(level.size(), [&](std::size_t i) {
                std::uint32_t s =
                    static_cast<std::uint32_t>(level[i] >> 32);
                std::uint32_t t = static_cast<std::uint32_t>(level[i]);
                forEachAttackerMove(
                    s, t,
                    [&](const std::vector<PairKey>& rs, auto /*label*/) {
                        found[i].insert(found[i].end(), rs.begin(),
                                        rs.end());
                    });
            });
            std::vector<PairKey> next;
            for (const std::vector<PairKey>& rs : found) {
                for (PairKey r : rs) {
                    if (alive_.insert(r).second)
                        next.push_back(r);
                }
            }
            level = std::move(next);
#if GRAPHITI_OBS_ENABLED
            obsPublish();  // once per BFS level, never per pair
#endif
        }
        return true;
    }

    bool
    prune()
    {
        // What one alive pair's scan concluded this round. Computed in
        // parallel (slot-per-pair, read-only on alive_), applied
        // sequentially — the kill set depends only on the round's
        // alive set, so the verdict is thread-count independent.
        struct Verdict
        {
            bool losing = false;
            std::string why;
            std::optional<PairKey> dead_response;
        };

        bool changed = true;
        while (changed) {
            changed = false;
            ++iterations_;
            if (stop_.stopRequested())
                return false;
            std::vector<PairKey> keys(alive_.begin(), alive_.end());
            std::vector<Verdict> verdicts(keys.size());
            std::atomic<bool> cancelled{false};
            pool_.parallelForChunks(
                keys.size(), [&](std::size_t begin, std::size_t end) {
                    std::size_t polled = 0;
                    for (std::size_t i = begin; i < end; ++i) {
                        if ((++polled & 0x3ff) == 0 &&
                            stop_.stopRequested()) {
                            cancelled.store(true,
                                            std::memory_order_relaxed);
                            return;
                        }
                        if (cancelled.load(std::memory_order_relaxed))
                            return;
                        scanPair(keys[i], verdicts[i]);
                    }
                });
            if (cancelled.load(std::memory_order_relaxed))
                return false;
            for (std::size_t i = 0; i < keys.size(); ++i) {
                if (!verdicts[i].losing)
                    continue;
                PairKey key = keys[i];
                std::uint32_t s = static_cast<std::uint32_t>(key >> 32);
                std::uint32_t t = static_cast<std::uint32_t>(key);
                alive_.erase(key);
                dead_.insert(key);
                reason_[key] = "impl move unmatched by spec: " +
                               verdicts[i].why + " [impl state " +
                               std::to_string(s) + ", spec state " +
                               std::to_string(t) + "]";
                if (verdicts[i].dead_response)
                    descend_[key] = *verdicts[i].dead_response;
                changed = true;
            }
#if GRAPHITI_OBS_ENABLED
            obsPublish();  // once per fixpoint round
#endif
        }
        return true;
    }

    /** Scan one alive pair for an unmatched attacker move against the
     * current alive set. Read-only; writes only @p out. */
    template <typename VerdictT>
    void
    scanPair(PairKey key, VerdictT& out) const
    {
        std::uint32_t s = static_cast<std::uint32_t>(key >> 32);
        std::uint32_t t = static_cast<std::uint32_t>(key);
        // On a partial spec space, missing edges of frontier states
        // could hold the matching response: never kill such pairs
        // (the optimistic bounded verdict).
        if (optimistic_ && closureTouchesFrontier(t))
            return;
        forEachAttackerMove(
            s, t, [&](const std::vector<PairKey>& rs, auto label) {
                if (out.losing)
                    return;
                for (PairKey r : rs)
                    if (alive_.count(r) > 0)
                        return;  // some response survives
                out.losing = true;
                out.why = label();
                if (!rs.empty())
                    out.dead_response = rs.front();
            });
    }

#if GRAPHITI_OBS_ENABLED
    /**
     * Size-based byte estimate of the game's own tables. Bucket counts
     * follow deterministically from the (thread-count-independent)
     * insertion sequences; the figure feeds resource accounting only.
     */
    std::size_t
    approxBytes() const
    {
        constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
        std::size_t bytes = 0;
        bytes += alive_.size() * (sizeof(PairKey) + kNodeOverhead) +
                 alive_.bucket_count() * sizeof(void*);
        bytes += dead_.size() * (sizeof(PairKey) + kNodeOverhead) +
                 dead_.bucket_count() * sizeof(void*);
        for (const auto& [key, why] : reason_) {
            (void)key;
            bytes += sizeof(std::pair<const PairKey, std::string>) +
                     why.size() + kNodeOverhead;
        }
        bytes += reason_.bucket_count() * sizeof(void*);
        bytes += descend_.size() *
                     (sizeof(std::pair<const PairKey, PairKey>) +
                      kNodeOverhead) +
                 descend_.bucket_count() * sizeof(void*);
        bytes += touches_.size() * sizeof(std::int8_t);
        bytes += spec_frontier_.size() *
                 (sizeof(std::uint32_t) + kNodeOverhead);
        return bytes;
    }

    /** Bounded-cadence game progress: pairs discovered, fixpoint
     * round, alive-set size, high-water bytes. Observation only. */
    void
    obsPublish()
    {
        std::size_t bytes = approxBytes();
        peak_bytes_ = std::max(peak_bytes_, bytes);
        if (probe_ == nullptr)
            return;
        probe_->publishGame(alive_.size() + dead_.size(), iterations_,
                            alive_.size());
        probe_->notePeakBytes(bytes);
    }
#endif

    const StateSpace& impl_;
    const StateSpace& spec_;
    bool optimistic_ = false;
    StopToken stop_;
    ThreadPool pool_;
    std::unordered_set<std::uint32_t> spec_frontier_;
    mutable std::vector<std::int8_t> touches_;
    std::unordered_set<PairKey> alive_;
    std::unordered_set<PairKey> dead_;
    std::unordered_map<PairKey, std::string> reason_;
    std::unordered_map<PairKey, PairKey> descend_;
    std::size_t iterations_ = 0;
#if GRAPHITI_OBS_ENABLED
    obs::VerifyProbe* probe_ = nullptr;
    std::size_t peak_bytes_ = 0;
#endif
};

}  // namespace

Result<RefinementReport>
checkRefinement(const DenotedModule& impl, const DenotedModule& spec,
                const InputDomain& domain,
                const ExplorationLimits& limits)
{
    GRAPHITI_OBS_TIMER(obs_timer, "refine.check_seconds");
    if (impl.inputNames() != spec.inputNames() ||
        impl.outputNames() != spec.outputNames()) {
        std::ostringstream os;
        os << "port interfaces differ; impl inputs:";
        for (const auto& p : impl.inputNames())
            os << " " << p.toString();
        os << ", spec inputs:";
        for (const auto& p : spec.inputNames())
            os << " " << p.toString();
        os << "; impl outputs:";
        for (const auto& p : impl.outputNames())
            os << " " << p.toString();
        os << ", spec outputs:";
        for (const auto& p : spec.outputNames())
            os << " " << p.toString();
        return err(os.str());
    }

    Result<StateSpace> impl_space = StateSpace::explore(impl, domain,
                                                        limits);
    if (!impl_space.ok())
        return impl_space.error().context("impl");
    Result<StateSpace> spec_space = StateSpace::explore(spec, domain,
                                                        limits);
    if (!spec_space.ok())
        return spec_space.error().context("spec");

    SimulationGame game(impl_space.value(), spec_space.value(),
                        /*optimistic=*/false, limits.stop,
                        limits.threads);
    Result<RefinementReport> played = game.run();
    if (!played.ok())
        return played.error();
    RefinementReport report = played.take();
    report.explore_peak_bytes = impl_space.value().peakBytes() +
                                spec_space.value().peakBytes();
    GRAPHITI_OBS_COUNT("refine.checks", 1);
    GRAPHITI_OBS_COUNT("refine.pairs",
                       static_cast<std::int64_t>(report.reachable_pairs));
    GRAPHITI_OBS_COUNT(
        "refine.fixpoint_iterations",
        static_cast<std::int64_t>(report.fixpoint_iterations));
    if (!report.refines)
        GRAPHITI_OBS_COUNT("refine.failures", 1);
    return report;
}

Result<RefinementReport>
checkRefinementOnSpaces(const StateSpace& impl, const StateSpace& spec,
                        bool optimistic_frontier, const StopToken& stop,
                        std::size_t threads)
{
    if (impl.inputPorts() != spec.inputPorts() ||
        impl.outputPorts() != spec.outputPorts())
        return err("checkRefinementOnSpaces: port interfaces differ");
    for (std::uint32_t p = 0; p < impl.inputPorts().size(); ++p) {
        if (impl.domainTokens(p).size() != spec.domainTokens(p).size())
            return err("checkRefinementOnSpaces: input domains differ");
    }
    SimulationGame game(impl, spec, optimistic_frontier, stop, threads);
    return game.run();
}

Result<RefinementReport>
checkGraphRefinement(const ExprHigh& impl, const ExprHigh& spec,
                     const Environment& env,
                     const std::vector<Token>& uniform_tokens,
                     const ExplorationLimits& limits)
{
    Result<ExprLow> impl_low = lowerToExprLow(impl);
    if (!impl_low.ok())
        return impl_low.error().context("impl graph");
    Result<ExprLow> spec_low = lowerToExprLow(spec);
    if (!spec_low.ok())
        return spec_low.error().context("spec graph");
    Result<DenotedModule> impl_mod =
        DenotedModule::denote(impl_low.value(), env);
    if (!impl_mod.ok())
        return impl_mod.error().context("impl graph");
    Result<DenotedModule> spec_mod =
        DenotedModule::denote(spec_low.value(), env);
    if (!spec_mod.ok())
        return spec_mod.error().context("spec graph");
    return checkRefinement(impl_mod.value(), spec_mod.value(),
                           InputDomain::uniform(impl_mod.value(),
                                                uniform_tokens),
                           limits);
}

}  // namespace graphiti
