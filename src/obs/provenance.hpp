#ifndef GRAPHITI_OBS_PROVENANCE_HPP
#define GRAPHITI_OBS_PROVENANCE_HPP

/**
 * @file
 * Per-token provenance: the causal hop log behind critical-path
 * attribution (obs/critpath.hpp).
 *
 * The simulator assigns every injected token a *birth* and records a
 * *firing* every time a node consumes tokens: which channels were
 * popped, how long each popped token had waited there, and how much of
 * that wait was spent at the head of its queue while the consumer was
 * provably starved (a sibling input empty) or backpressured (an output
 * full). Because every queue in the simulator is FIFO — channels,
 * operator pipelines, completion buffers — the tracker can mirror them
 * with plain deques of lineage entries and never needs to stamp the
 * tokens themselves: the mirror stays in lockstep with the real run.
 *
 * The resulting log is a last-arrival DAG: each firing points (through
 * its consumed hops) at the firings/births that produced its inputs.
 * Walking any single-parent chain from a completion back to a birth
 * telescopes exactly — the sum of channel waits and service gaps along
 * the chain equals the completion cycle minus the birth cycle — which
 * is what lets critpath attribute every cycle of a token's latency to
 * compute, queue wait or backpressure without double counting.
 *
 * Memory is bounded: the firing log is a ring buffer (oldest firings
 * evicted first; chains that reach an evicted firing are reported as
 * truncated), and births/tag events/occupancy series have hard caps.
 *
 * Everything recorded is a pure function of the run (cycle counts and
 * indices only, no wall-clock, no pointers), so the same seed and the
 * same FaultPlan reproduce a byte-identical log.
 */

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace graphiti::obs {

/**
 * Where a token in a channel came from: a firing (>= 0, the firing
 * sequence number), a birth (< 0, encoded as -(birth_seq + 1)), or
 * unknown (the tracker lost the lineage, e.g. a capped birth log).
 */
using ProvSource = std::int64_t;

constexpr ProvSource kProvUnknown =
    std::numeric_limits<ProvSource>::min();

inline ProvSource
provBirthSource(std::uint64_t birth_seq)
{
    return -static_cast<ProvSource>(birth_seq) - 1;
}

inline bool
provIsFiring(ProvSource src)
{
    return src >= 0;
}

inline bool
provIsBirth(ProvSource src)
{
    return src < 0 && src != kProvUnknown;
}

inline std::uint64_t
provBirthIndex(ProvSource src)
{
    return static_cast<std::uint64_t>(-(src + 1));
}

/** A token entering the circuit: graph input, Init seed or Source. */
struct ProvBirth
{
    std::uint64_t seq = 0;  ///< global birth index
    int channel = -1;       ///< channel the token entered
    /** Graph input port, or -1 for node-spawned tokens. */
    int port = -1;
    /** Spawning node index (port < 0); unused otherwise. */
    std::uint32_t node = 0;
    /** Position within its input port (or spawner's stream). */
    std::uint64_t ordinal = 0;
    std::uint64_t cycle = 0;  ///< enqueue cycle
};

/** One consumed token at one firing. */
struct ProvHop
{
    int channel = -1;
    std::uint64_t enq_cycle = 0;
    /** Dequeue cycle minus enqueue cycle (>= 1 in a committed run). */
    std::uint32_t wait = 0;
    /** Head-of-queue cycles while the consumer was blocked on a full
     * output channel. */
    std::uint32_t bp_cycles = 0;
    /** Head-of-queue cycles while the consumer was starved of a
     * sibling input. */
    std::uint32_t starve_cycles = 0;
    ProvSource src = kProvUnknown;  ///< producing firing / birth
};

/** One node firing: the consumed hops plus the service gap. */
struct ProvFiring
{
    std::uint64_t seq = 0;
    std::uint32_t node = 0;
    std::uint64_t cycle = 0;  ///< consume cycle
    /** Cycle the results were pushed downstream (>= cycle). For
     * handshake components this equals cycle; for pipelined units it
     * is cycle + service latency + any completion-buffer stall; for a
     * Tagger return it is the program-order commit cycle. */
    std::uint64_t emit_cycle = 0;
    /** Pipeline service latency actually applied (including injected
     * jitter); 0 for single-cycle handshake components. */
    std::uint32_t svc_latency = 0;
    /** True for Tagger return->commit holds: the emit gap is reorder
     * wait (attributed to queue wait), not compute. */
    bool tag_hold = false;
    std::vector<ProvHop> consumed;
};

/** A token collected at a graph output. */
struct ProvCompletion
{
    int port = 0;
    int channel = -1;
    std::uint64_t ordinal = 0;  ///< position within the port
    std::uint64_t cycle = 0;    ///< collection cycle
    ProvHop hop;                ///< residence in the output channel
};

/** Tagger lifecycle events (the reorder telemetry). */
enum class TagEventKind
{
    Alloc,   ///< a fresh token received a tag
    Return,  ///< a tagged token came back from the loop body
    Commit,  ///< the Untagger released the oldest outstanding token
};

const char* toString(TagEventKind kind);

struct ProvTagEvent
{
    TagEventKind kind = TagEventKind::Alloc;
    std::uint32_t node = 0;
    std::uint64_t cycle = 0;
    /** Program-order allocation index of the token. */
    std::uint64_t alloc_index = 0;
    /** Return only: how many program-order-earlier tokens were still
     * uncommitted when this one returned (0 = returned in order). */
    std::uint32_t reorder_distance = 0;
};

/** Tracker capacity limits ("bounded hop records"). */
struct ProvenanceConfig
{
    /** Ring-buffer capacity of the firing log; oldest evicted. */
    std::size_t max_firings = 262144;
    /** Hard cap on recorded births (excess lose their lineage). */
    std::size_t max_births = 65536;
    /** Hard cap on recorded tag events. */
    std::size_t max_tag_events = 65536;
    /** Per-channel cap on the change-only occupancy series. */
    std::size_t max_series_points = 4096;
};

/** The recorded run: static structure plus the event log. */
struct ProvenanceLog
{
    struct NodeInfo
    {
        std::string name;
        std::string type;
        int latency = 0;
        std::vector<int> ins;
        std::vector<int> outs;
    };

    struct ChannelInfo
    {
        std::string desc;
        std::size_t capacity = 0;
    };

    /** Per-channel occupancy aggregates (tracker-mirror occupancy:
     * committed slots plus the cycle's staged pushes). */
    struct ChannelStats
    {
        std::size_t max_occupancy = 0;
        /** Sum over cycles of the channel's occupancy. */
        std::uint64_t occupancy_integral = 0;
        std::uint64_t pushes = 0;
        std::uint64_t pops = 0;
        /** Change-only (cycle, occupancy) samples, capped. */
        std::vector<std::pair<std::uint64_t, std::uint32_t>> series;
        bool series_truncated = false;
    };

    std::vector<NodeInfo> nodes;
    std::vector<ChannelInfo> channels;
    std::vector<ChannelStats> stats;

    std::deque<ProvFiring> firings;  ///< ring window of the firing log
    std::uint64_t first_firing = 0;  ///< seq of firings.front()
    std::uint64_t dropped_firings = 0;
    std::vector<ProvBirth> births;
    std::uint64_t dropped_births = 0;
    std::vector<ProvCompletion> completions;
    std::vector<ProvTagEvent> tag_events;
    std::uint64_t dropped_tag_events = 0;
    /** Cycle count of the run (set by endRun). */
    std::uint64_t cycles = 0;

    /** The firing with sequence number @p seq; nullptr if evicted. */
    const ProvFiring* firing(std::uint64_t seq) const;
    /** The birth with sequence number @p seq; nullptr if capped. */
    const ProvBirth* birth(std::uint64_t seq) const;

    std::uint64_t totalFirings() const
    {
        return first_firing + firings.size();
    }

    /** Full deterministic dump (can be large; see tailJson). */
    json::Value toJson() const;

    /**
     * Post-mortem rendering: summary counts plus the last
     * @p max_firings firings with node names resolved — the payload
     * stress-harness failure artifacts embed.
     */
    json::Value tailJson(std::size_t max_firings = 64) const;
};

/**
 * The tracker the simulator drives. One instance records one run at a
 * time: beginRun resets all state, so attach a fresh tracker (or read
 * the log out) before reusing a scope across runs.
 *
 * All hooks are invoked from the simulator's own thread; the tracker
 * is intentionally unsynchronized (the simulator is single-threaded).
 */
class ProvenanceTracker
{
  public:
    explicit ProvenanceTracker(ProvenanceConfig config = {});

    const ProvenanceConfig& config() const { return config_; }
    const ProvenanceLog& log() const { return log_; }

    // ----- hooks, called by sim::Simulator in run order -----

    /** Reset and install the circuit structure for a new run. */
    void beginRun(std::vector<ProvenanceLog::NodeInfo> nodes,
                  std::vector<ProvenanceLog::ChannelInfo> channels);

    /** A workload token entered input @p port on @p channel. */
    void onBirth(int channel, int port, std::uint64_t cycle);

    /** @p node pushed a spontaneous token (Init seed, Source). */
    void onSpawn(std::uint32_t node, int channel, std::uint64_t cycle);

    /** A single-cycle firing: pops @p ins, pushes @p outs (channels
     * < 0 are dangling and skipped). */
    void onFire(std::uint32_t node, std::uint64_t cycle, const int* ins,
                std::size_t nins, const int* outs, std::size_t nouts);

    /** A pipelined unit accepted a token set with service latency
     * @p latency; results emit later via onEmit (FIFO). */
    void onAccept(std::uint32_t node, std::uint64_t cycle,
                  const int* ins, std::size_t nins,
                  std::uint32_t latency);

    /** The oldest accepted token set of @p node emitted its result. */
    void onEmit(std::uint32_t node, int out_channel,
                std::uint64_t cycle);

    /** Tagger allocated @p alloc_index: pops @p in, pushes @p out. */
    void onTagAlloc(std::uint32_t node, std::uint64_t cycle, int in,
                    int out, std::uint64_t alloc_index);

    /** Tagger accepted returning token @p alloc_index from @p in; it
     * is held until commit. */
    void onTagReturn(std::uint32_t node, std::uint64_t cycle, int in,
                     std::uint64_t alloc_index,
                     std::uint32_t reorder_distance);

    /** Tagger committed @p alloc_index in program order onto @p out. */
    void onTagCommit(std::uint32_t node, std::uint64_t cycle, int out,
                     std::uint64_t alloc_index);

    /** A token arrived at graph output @p port (popped @p channel). */
    void onOutput(int port, int channel, std::uint64_t cycle);

    /**
     * @p node held input tokens this cycle but did not fire:
     * @p starved = a sibling input was empty, @p backpressured = an
     * output was full. Bumps the wait classification of the head
     * token of each of the node's occupied input channels.
     */
    void onNodeBlocked(std::uint32_t node, std::uint64_t cycle,
                       bool starved, bool backpressured);

    /** Close the run: finalize occupancy integrals. */
    void endRun(std::uint64_t cycles);

  private:
    /** Mirror of one resident token. */
    struct Entry
    {
        ProvSource src = kProvUnknown;
        std::uint64_t enq_cycle = 0;
        std::uint32_t bp = 0;
        std::uint32_t starve = 0;
    };

    std::uint64_t recordFiring(std::uint32_t node, std::uint64_t cycle,
                               std::uint32_t svc_latency, bool tag_hold,
                               const int* ins, std::size_t nins);
    ProvHop popHop(int channel, std::uint64_t cycle);
    void pushEntry(int channel, ProvSource src, std::uint64_t cycle);
    void touchOccupancy(int channel, std::uint64_t cycle, int delta);
    ProvFiring* mutableFiring(std::uint64_t seq);

    ProvenanceConfig config_;
    ProvenanceLog log_;
    std::vector<std::deque<Entry>> mirror_;
    /** Per-node FIFO of accepted-not-yet-emitted firing seqs. */
    std::vector<std::deque<std::uint64_t>> pipeline_;
    /** Tagger holds: allocation index -> firing seq. */
    std::map<std::uint64_t, std::uint64_t> tag_hold_;
    std::vector<std::uint32_t> occupancy_;
    std::vector<std::uint64_t> occupancy_cycle_;
    std::vector<std::uint64_t> birth_ordinal_;   // per input port
    std::vector<std::uint64_t> spawn_ordinal_;   // per node
    std::vector<std::uint64_t> output_ordinal_;  // per output port
    std::uint64_t next_birth_ = 0;
    std::uint64_t max_cycle_ = 0;
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_PROVENANCE_HPP
