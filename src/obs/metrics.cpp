#include "obs/metrics.hpp"

#include <algorithm>

namespace graphiti::obs {

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name))
{
    if (registry_ != nullptr)
        start_ = std::chrono::steady_clock::now();
}

ScopedTimer&
ScopedTimer::operator=(ScopedTimer&& other) noexcept
{
    if (this != &other) {
        stop();
        registry_ = other.registry_;
        name_ = std::move(other.name_);
        start_ = other.start_;
        other.registry_ = nullptr;
    }
    return *this;
}

ScopedTimer::~ScopedTimer() { stop(); }

double
ScopedTimer::stop()
{
    if (registry_ == nullptr)
        return 0.0;
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    registry_->observe(name_, seconds);
    registry_ = nullptr;
    return seconds;
}

void
MetricsRegistry::add(const std::string& name, std::int64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::set(const std::string& name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::setMax(const std::string& name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted)
        it->second = std::max(it->second, value);
}

void
MetricsRegistry::observe(const std::string& name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    TimerStats& stats = timers_[name];
    if (stats.count == 0) {
        stats.min_seconds = seconds;
        stats.max_seconds = seconds;
    } else {
        stats.min_seconds = std::min(stats.min_seconds, seconds);
        stats.max_seconds = std::max(stats.max_seconds, seconds);
    }
    ++stats.count;
    stats.total_seconds += seconds;
}

ScopedTimer
MetricsRegistry::timer(std::string name)
{
    return ScopedTimer(this, std::move(name));
}

std::int64_t
MetricsRegistry::counter(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::optional<double>
MetricsRegistry::gauge(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        return std::nullopt;
    return it->second;
}

std::optional<TimerStats>
MetricsRegistry::timerStats(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = timers_.find(name);
    if (it == timers_.end())
        return std::nullopt;
    return it->second;
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry& other)
{
    // Snapshot under the source lock, fold under ours: never hold
    // both at once (no lock-order edge between registries).
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, TimerStats> timers;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        counters = other.counters_;
        gauges = other.gauges_;
        timers = other.timers_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : counters)
        counters_[name] += value;
    for (const auto& [name, value] : gauges)
        gauges_[name] = value;
    for (const auto& [name, stats] : timers) {
        TimerStats& mine = timers_[name];
        if (mine.count == 0) {
            mine = stats;
        } else if (stats.count > 0) {
            mine.min_seconds =
                std::min(mine.min_seconds, stats.min_seconds);
            mine.max_seconds =
                std::max(mine.max_seconds, stats.max_seconds);
            mine.count += stats.count;
            mine.total_seconds += stats.total_seconds;
        }
    }
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    timers_.clear();
}

json::Value
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value counters{json::Object{}};
    for (const auto& [name, value] : counters_)
        counters.set(name, value);
    json::Value gauges{json::Object{}};
    for (const auto& [name, value] : gauges_)
        gauges.set(name, value);
    json::Value timers{json::Object{}};
    for (const auto& [name, stats] : timers_) {
        json::Value entry{json::Object{}};
        entry.set("count", stats.count);
        entry.set("total_seconds", stats.total_seconds);
        entry.set("min_seconds", stats.min_seconds);
        entry.set("max_seconds", stats.max_seconds);
        timers.set(name, std::move(entry));
    }
    json::Value out{json::Object{}};
    out.set("counters", std::move(counters));
    out.set("gauges", std::move(gauges));
    out.set("timers", std::move(timers));
    return out;
}

}  // namespace graphiti::obs
