#include "obs/log.hpp"

#include <algorithm>

namespace graphiti::obs {

const char*
toString(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    }
    return "info";
}

json::Value
LogRecord::toJson() const
{
    json::Value out{json::Object{}};
    out.set("t_ms", t_ms);
    out.set("level", toString(level));
    out.set("event", event);
    if (!job_id.empty())
        out.set("job_id", job_id);
    if (!fields.isNull())
        out.set("fields", fields);
    return out;
}

Logger::Logger(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now())
{
}

double
Logger::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
Logger::log(LogLevel level, const std::string& job_id,
            const std::string& event, json::Value fields)
{
    LogRecord record;
    record.level = level;
    record.t_ms = nowMs();
    record.job_id = job_id;
    record.event = event;
    record.fields = std::move(fields);

    std::lock_guard<std::mutex> lock(mutex_);
    if (level < min_level_)
        return;
    recorded_ += 1;
    if (file_open_) {
        file_ << record.toJson().dump() << "\n";
        file_.flush();
    }
    ring_.push_back(std::move(record));
    while (ring_.size() > capacity_) {
        ring_.pop_front();
        dropped_ += 1;
    }
}

void
Logger::setMinLevel(LogLevel level)
{
    std::lock_guard<std::mutex> lock(mutex_);
    min_level_ = level;
}

Result<bool>
Logger::openFile(const std::string& path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    file_.open(path, std::ios::app);
    if (!file_)
        return err("Logger: cannot open " + path + " for appending");
    file_open_ = true;
    return true;
}

std::size_t
Logger::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::size_t
Logger::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::vector<LogRecord>
Logger::tail(std::size_t n) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<LogRecord> out;
    std::size_t take = std::min(n, ring_.size());
    out.reserve(take);
    for (std::size_t i = ring_.size() - take; i < ring_.size(); ++i)
        out.push_back(ring_[i]);
    return out;
}

json::Value
Logger::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value out{json::Object{}};
    out.set("capacity", capacity_);
    out.set("recorded", recorded_);
    out.set("dropped", dropped_);
    json::Value records{json::Array{}};
    for (const LogRecord& record : ring_)
        records.push(record.toJson());
    out.set("records", std::move(records));
    return out;
}

}  // namespace graphiti::obs
