#include "obs/expose.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace graphiti::obs::expo {

namespace {

/** Integers render without a fraction; everything else as %.10g. */
std::string
formatValue(double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::abs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    return buf;
}

}  // namespace

std::string
metricName(const std::string& dotted, const std::string& prefix)
{
    std::string out = prefix;
    for (char c : dotted) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
TextExposition::typeLine(const std::string& name, const char* type)
{
    out_ += "# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
}

void
TextExposition::sample(const std::string& name, double value)
{
    out_ += name;
    out_ += ' ';
    out_ += formatValue(value);
    out_ += '\n';
}

void
TextExposition::counter(const std::string& dotted, double value)
{
    std::string name = metricName(dotted) + "_total";
    typeLine(name, "counter");
    sample(name, value);
}

void
TextExposition::gauge(const std::string& dotted, double value)
{
    std::string name = metricName(dotted);
    typeLine(name, "gauge");
    sample(name, value);
}

void
TextExposition::timer(const std::string& dotted,
                      const TimerStats& stats)
{
    std::string name = metricName(dotted) + "_seconds";
    typeLine(name, "summary");
    sample(name + "_count", static_cast<double>(stats.count));
    sample(name + "_sum", stats.total_seconds);
    typeLine(name + "_max", "gauge");
    sample(name + "_max", stats.max_seconds);
}

void
TextExposition::reservoir(const std::string& dotted,
                          const LatencyReservoir& window)
{
    std::string name = metricName(dotted);
    typeLine(name, "summary");
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0}};
    for (const auto& [label, p] : kQuantiles) {
        out_ += name;
        out_ += "{quantile=\"";
        out_ += label;
        out_ += "\"} ";
        out_ += formatValue(window.percentile(p));
        out_ += '\n';
    }
    sample(name + "_count", static_cast<double>(window.count()));
    typeLine(name + "_max", "gauge");
    sample(name + "_max", window.max());
}

std::size_t
renderRegistry(const MetricsRegistry& registry, TextExposition& out)
{
    // The registry snapshots as {"counters", "gauges", "timers"},
    // each keyed by a std::map — already sorted within its family.
    // Interleave the families into one name-sorted emission so the
    // document layout is a pure function of registry content.
    json::Value snapshot = registry.toJson();
    std::map<std::string, std::function<void()>> emit;
    if (const json::Value* counters = snapshot.find("counters")) {
        for (const auto& [name, value] : counters->asObject()) {
            double v = value.asNumber();
            emit[metricName(name)] = [&out, name = name, v] {
                out.counter(name, v);
            };
        }
    }
    if (const json::Value* gauges = snapshot.find("gauges")) {
        for (const auto& [name, value] : gauges->asObject()) {
            double v = value.asNumber();
            emit[metricName(name)] = [&out, name = name, v] {
                out.gauge(name, v);
            };
        }
    }
    if (const json::Value* timers = snapshot.find("timers")) {
        for (const auto& [name, value] : timers->asObject()) {
            TimerStats stats;
            if (const json::Value* c = value.find("count"))
                stats.count =
                    static_cast<std::uint64_t>(c->asNumber());
            if (const json::Value* t = value.find("total_seconds"))
                stats.total_seconds = t->asNumber();
            if (const json::Value* m = value.find("min_seconds"))
                stats.min_seconds = m->asNumber();
            if (const json::Value* m = value.find("max_seconds"))
                stats.max_seconds = m->asNumber();
            emit[metricName(name)] = [&out, name = name, stats] {
                out.timer(name, stats);
            };
        }
    }
    for (const auto& [name, fn] : emit)
        fn();
    return emit.size();
}

Result<std::vector<Sample>>
parseExposition(const std::string& text)
{
    std::vector<Sample> samples;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        line_no += 1;
        if (line.empty() || line[0] == '#')
            continue;

        Sample sample;
        std::size_t at = 0;
        while (at < line.size() && line[at] != '{' && line[at] != ' ')
            at += 1;
        sample.name = line.substr(0, at);
        if (sample.name.empty())
            return err("exposition line " + std::to_string(line_no) +
                       ": missing metric name");
        if (at < line.size() && line[at] == '{') {
            std::size_t close = line.find('}', at);
            if (close == std::string::npos)
                return err("exposition line " +
                           std::to_string(line_no) +
                           ": unterminated label set");
            std::string labels = line.substr(at + 1, close - at - 1);
            std::size_t lp = 0;
            while (lp < labels.size()) {
                std::size_t eq = labels.find('=', lp);
                if (eq == std::string::npos ||
                    eq + 1 >= labels.size() || labels[eq + 1] != '"')
                    return err("exposition line " +
                               std::to_string(line_no) +
                               ": malformed label");
                std::size_t endq = labels.find('"', eq + 2);
                if (endq == std::string::npos)
                    return err("exposition line " +
                               std::to_string(line_no) +
                               ": unterminated label value");
                sample.labels[labels.substr(lp, eq - lp)] =
                    labels.substr(eq + 2, endq - eq - 2);
                lp = endq + 1;
                if (lp < labels.size() && labels[lp] == ',')
                    lp += 1;
            }
            at = close + 1;
        }
        while (at < line.size() && line[at] == ' ')
            at += 1;
        if (at >= line.size())
            return err("exposition line " + std::to_string(line_no) +
                       ": missing value");
        char* end = nullptr;
        sample.value = std::strtod(line.c_str() + at, &end);
        if (end == line.c_str() + at)
            return err("exposition line " + std::to_string(line_no) +
                       ": unparseable value");
        samples.push_back(std::move(sample));
    }
    return samples;
}

ExpositionServer::~ExpositionServer()
{
    stop();
}

Result<bool>
ExpositionServer::start(std::uint16_t port, Provider provider)
{
    if (started_)
        return err("exposition server already started");
    if (provider == nullptr)
        return err("exposition server needs a provider");
    Result<net::Socket> listener = net::listenTcp(port);
    if (!listener.ok())
        return listener.error().context("ExpositionServer::start");
    Result<std::uint16_t> bound = net::boundPort(listener.value());
    if (!bound.ok())
        return bound.error().context("ExpositionServer::start");
    listener_ = listener.take();
    port_ = bound.value();
    provider_ = std::move(provider);
    stopping_.store(false);
    thread_ = std::thread([this] { acceptLoop(); });
    started_ = true;
    return true;
}

void
ExpositionServer::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    if (thread_.joinable())
        thread_.join();
    listener_.close();
    started_ = false;
}

void
ExpositionServer::acceptLoop()
{
    while (!stopping_.load()) {
        Result<net::Socket> accepted =
            net::acceptConnection(listener_, 100);
        if (!accepted.ok())
            return;  // listener broke; the daemon keeps running
        if (!accepted.value().valid())
            continue;  // timeout — re-check the stop flag
        net::Socket socket = accepted.take();
        // Drain whatever request head arrived (one read is enough
        // for any scraper's GET); the response is the same whatever
        // the path, so parsing it buys nothing.
        std::string request;
        (void)net::readSome(socket, request, 4096, 500);
        std::string body = provider_();
        std::string response =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; "
            "charset=utf-8\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n\r\n" +
            body;
        (void)net::writeAll(socket, response, 2000);
        scrapes_.fetch_add(1, std::memory_order_relaxed);
    }
}

}  // namespace graphiti::obs::expo
