#ifndef GRAPHITI_OBS_FLIGHT_HPP
#define GRAPHITI_OBS_FLIGHT_HPP

/**
 * @file
 * A flight recorder: a bounded ring of the last N notable service
 * events (completed jobs, scheduler decisions — admit / shed /
 * preempt / deadline / wedge, each with its reason), dumpable as one
 * JSON document so a wedged, signalled or crashed daemon leaves a
 * post-mortem.
 *
 * Dump paths, in decreasing order of ceremony:
 *   - dump()/dumpTo(): atomic write-temp-then-rename (the same
 *     discipline as the verdict store), triggered by SIGUSR1 from the
 *     daemon's main loop or by the wedge supervisor;
 *   - installCrashDump(): atexit + fatal-signal (SIGSEGV/SIGABRT/
 *     SIGBUS) best-effort write. The handlers allocate and lock,
 *     which is not async-signal-safe — a corrupt heap can lose the
 *     dump, but the alternative is losing it always. kill -9 leaves
 *     only what a previous dump wrote, by design.
 *
 * Thread-safe; records are stamped with a monotonic millisecond
 * timestamp sharing the recorder's epoch.
 */

#include <chrono>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>

#include "obs/json.hpp"
#include "support/result.hpp"

namespace graphiti::obs {

/** Bounded ring of post-mortem-worthy service events. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 256);

    /** Disarms the crash-dump hooks if this recorder is the one
     * installed, so the atexit/signal path can never touch a
     * destroyed recorder. */
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /** Record one event: @p kind is "job" (a completed-job record) or
     * "sched" (a scheduler decision); @p data carries the payload
     * (job_id, status, reason, timings...). */
    void record(const std::string& kind, json::Value data);

    /** Default target of dump(); also the crash-dump target. */
    void setDumpPath(const std::string& path);
    std::string dumpPath() const;

    /** Atomic JSON dump to the configured path. */
    Result<bool> dump() const;
    /** Atomic JSON dump to @p path. */
    Result<bool> dumpTo(const std::string& path) const;

    std::size_t size() const;
    std::size_t recorded() const;
    std::size_t dropped() const;

    /** {capacity, recorded, dropped, records: [{t_ms, kind, ...}]}. */
    json::Value toJson() const;

    /** Milliseconds since this recorder's epoch (monotonic). */
    double nowMs() const;

  private:
    mutable std::mutex mutex_;
    std::deque<json::Value> ring_;
    std::size_t capacity_;
    std::size_t recorded_ = 0;
    std::size_t dropped_ = 0;
    std::string dump_path_;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * Register @p recorder for best-effort dumps on process exit and on
 * fatal signals (SIGSEGV, SIGABRT, SIGBUS). One recorder per process;
 * a second call replaces the first. Pass nullptr to disarm; the
 * recorder's destructor disarms automatically, so a recorder that
 * dies before the process leaves the hooks inert rather than
 * dangling.
 */
void installCrashDump(FlightRecorder* recorder);

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_FLIGHT_HPP
