#include "obs/flight.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace graphiti::obs {

namespace {

std::atomic<FlightRecorder*> g_crash_recorder{nullptr};
std::atomic<bool> g_crash_hooks_installed{false};

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now())
{
}

FlightRecorder::~FlightRecorder()
{
    // Never leave the crash hooks pointing at a dead recorder: a
    // post-destruction exit()/fatal signal must find nullptr, not a
    // dangling pointer whose mutex no longer exists.
    FlightRecorder* self = this;
    g_crash_recorder.compare_exchange_strong(self, nullptr);
}

double
FlightRecorder::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
FlightRecorder::record(const std::string& kind, json::Value data)
{
    json::Value entry{json::Object{}};
    entry.set("t_ms", nowMs());
    entry.set("kind", kind);
    if (data.isObject())
        for (auto& [key, value] : data.asObject())
            entry.set(key, std::move(value));

    std::lock_guard<std::mutex> lock(mutex_);
    recorded_ += 1;
    ring_.push_back(std::move(entry));
    while (ring_.size() > capacity_) {
        ring_.pop_front();
        dropped_ += 1;
    }
}

void
FlightRecorder::setDumpPath(const std::string& path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dump_path_ = path;
}

std::string
FlightRecorder::dumpPath() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dump_path_;
}

Result<bool>
FlightRecorder::dump() const
{
    std::string path = dumpPath();
    if (path.empty())
        return err("FlightRecorder: no dump path configured");
    return dumpTo(path);
}

Result<bool>
FlightRecorder::dumpTo(const std::string& path) const
{
    return json::writeFileAtomic(path, toJson());
}

std::size_t
FlightRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::size_t
FlightRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::size_t
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

json::Value
FlightRecorder::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value out{json::Object{}};
    out.set("capacity", capacity_);
    out.set("recorded", recorded_);
    out.set("dropped", dropped_);
    json::Value records{json::Array{}};
    for (const json::Value& record : ring_)
        records.push(record);
    out.set("records", std::move(records));
    return out;
}

namespace {

void
crashDumpNow()
{
    FlightRecorder* recorder = g_crash_recorder.load();
    if (recorder != nullptr && !recorder->dumpPath().empty())
        (void)recorder->dump();
}

void
fatalSignalHandler(int signum)
{
    // Dump once (exchange so a handler re-entered mid-dump cannot
    // loop), then re-raise with the default disposition so the
    // process still dies with the original signal (and core dump).
    FlightRecorder* recorder = g_crash_recorder.exchange(nullptr);
    if (recorder != nullptr && !recorder->dumpPath().empty())
        (void)recorder->dump();
    std::signal(signum, SIG_DFL);
    std::raise(signum);
}

}  // namespace

void
installCrashDump(FlightRecorder* recorder)
{
    g_crash_recorder.store(recorder);
    if (recorder == nullptr || g_crash_hooks_installed.exchange(true))
        return;
    std::atexit(crashDumpNow);
    for (int signum : {SIGSEGV, SIGABRT, SIGBUS})
        std::signal(signum, fatalSignalHandler);
}

}  // namespace graphiti::obs
