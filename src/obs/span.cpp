#include "obs/span.hpp"

#include <algorithm>

namespace graphiti::obs {

json::Value
SpanRecord::toJson() const
{
    json::Value out{json::Object{}};
    out.set("track", track);
    out.set("name", name);
    out.set("start_ms", start_ms);
    out.set("duration_ms", duration_ms);
    return out;
}

SpanTracker::SpanTracker(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now())
{
}

void
SpanTracker::attachSink(std::shared_ptr<TraceSink> sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = std::move(sink);
}

double
SpanTracker::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
SpanTracker::record(const std::string& track, const std::string& name,
                    double start_ms, double end_ms)
{
    SpanRecord span;
    span.track = track;
    span.name = name;
    span.start_ms = start_ms;
    span.duration_ms = end_ms > start_ms ? end_ms - start_ms : 0.0;

    std::lock_guard<std::mutex> lock(mutex_);
    recorded_ += 1;
    if (sink_ != nullptr)
        sink_->span(span.track, span.name, span.start_ms,
                    span.duration_ms);
    ring_.push_back(std::move(span));
    while (ring_.size() > capacity_) {
        ring_.pop_front();
        dropped_ += 1;
    }
}

SpanTracker::Scoped::Scoped(SpanTracker* tracker, std::string track,
                            std::string name)
    : tracker_(tracker), track_(std::move(track)),
      name_(std::move(name))
{
    if (tracker_ != nullptr)
        start_ms_ = tracker_->nowMs();
}

SpanTracker::Scoped::~Scoped()
{
    if (tracker_ != nullptr)
        tracker_->record(track_, name_, start_ms_, tracker_->nowMs());
}

std::size_t
SpanTracker::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::size_t
SpanTracker::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::vector<SpanRecord>
SpanTracker::tail(std::size_t n) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanRecord> out;
    std::size_t take = std::min(n, ring_.size());
    out.reserve(take);
    for (std::size_t i = ring_.size() - take; i < ring_.size(); ++i)
        out.push_back(ring_[i]);
    return out;
}

json::Value
SpanTracker::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value out{json::Object{}};
    out.set("capacity", capacity_);
    out.set("recorded", recorded_);
    out.set("dropped", dropped_);
    json::Value spans{json::Array{}};
    for (const SpanRecord& span : ring_)
        spans.push(span.toJson());
    out.set("spans", std::move(spans));
    return out;
}

}  // namespace graphiti::obs
