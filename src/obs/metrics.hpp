#ifndef GRAPHITI_OBS_METRICS_HPP
#define GRAPHITI_OBS_METRICS_HPP

/**
 * @file
 * A registry of named metrics: monotonically increasing counters,
 * last-value gauges, and duration histograms fed by RAII scoped
 * timers. Thread-safe (one mutex; the hot simulator loop batches its
 * updates, so registry calls stay off per-cycle paths), snapshottable
 * as JSON.
 *
 * Naming convention: dotted lowercase paths, `<layer>.<metric>` —
 * e.g. `sim.fires`, `egraph.applications`, `refine.states`,
 * `stress.plans`, `rewrite.rule.<rule-name>`. See
 * docs/observability.md for the full vocabulary.
 */

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/json.hpp"

namespace graphiti::obs {

class MetricsRegistry;

/**
 * RAII timer: records one histogram observation on destruction (or on
 * an early stop()). A default-constructed timer is inert — the
 * disabled-instrumentation macros expand to one.
 */
class ScopedTimer
{
  public:
    ScopedTimer() = default;
    ScopedTimer(MetricsRegistry* registry, std::string name);
    ~ScopedTimer();

    ScopedTimer(ScopedTimer&& other) noexcept { *this = std::move(other); }
    ScopedTimer& operator=(ScopedTimer&& other) noexcept;
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /** Record now instead of at scope exit; returns elapsed seconds. */
    double stop();

  private:
    MetricsRegistry* registry_ = nullptr;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

/** Aggregate of one duration histogram. */
struct TimerStats
{
    std::uint64_t count = 0;
    double total_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
};

/** The registry. */
class MetricsRegistry
{
  public:
    /** Increment counter @p name by @p delta (creates at zero). */
    void add(const std::string& name, std::int64_t delta = 1);

    /** Set gauge @p name to @p value. */
    void set(const std::string& name, double value);

    /** Raise gauge @p name to @p value if larger (high-water marks). */
    void setMax(const std::string& name, double value);

    /** Record one duration observation under @p name. */
    void observe(const std::string& name, double seconds);

    /** Start a scoped timer feeding observe(@p name). */
    ScopedTimer timer(std::string name);

    /** Current counter value; 0 when never touched. */
    std::int64_t counter(const std::string& name) const;

    /** Current gauge value; nullopt when never set. */
    std::optional<double> gauge(const std::string& name) const;

    /** Histogram aggregate; nullopt when never observed. */
    std::optional<TimerStats> timerStats(const std::string& name) const;

    /**
     * Fold @p other into this registry: counters add, timer
     * histograms merge, gauges take @p other's value when set. The
     * served scheduler folds each finished job's private scope into
     * the service-wide one this way.
     */
    void mergeFrom(const MetricsRegistry& other);

    /** Drop every metric. */
    void clear();

    /**
     * Snapshot as {"counters": {...}, "gauges": {...},
     * "timers": {name: {count, total_seconds, min_seconds,
     * max_seconds}}}.
     */
    json::Value toJson() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::int64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, TimerStats> timers_;
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_METRICS_HPP
