#ifndef GRAPHITI_OBS_TRACE_HPP
#define GRAPHITI_OBS_TRACE_HPP

/**
 * @file
 * Structured runtime traces: the stable event schema shared by
 * sim::SimResult and the trace sinks, a Chrome/Perfetto trace_event
 * JSON backend (open the file in chrome://tracing or ui.perfetto.dev)
 * and a VCD waveform writer (open in GTKWave).
 *
 * Timestamps are simulator cycles, rendered as microseconds in the
 * Perfetto file (one cycle = 1 us) so the trace UI's time axis reads
 * directly as cycle numbers.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "support/result.hpp"

namespace graphiti::obs {

/** What a trace record describes. */
enum class EventKind
{
    Fire,     ///< a node moved tokens this cycle
    Stall,    ///< a node held tokens but could not fire
    Emit,     ///< a pipelined unit delivered a result token
    Fault,    ///< an injected fault held back an otherwise-legal move
    Output,   ///< a token arrived at a graph output
    Verdict,  ///< the watchdog classified a stuck run
    Phase,    ///< a compiler phase boundary
};

const char* toString(EventKind kind);

/**
 * The stable trace schema: one record per event, shared by
 * sim::TraceEvent (an alias of this struct) and every TraceSink
 * backend. `channel` is the simulator channel index when the event
 * concerns one (-1 otherwise); `detail` carries free-form context
 * (token text, refusal reason, ...).
 */
struct TraceRecord
{
    std::size_t cycle = 0;
    std::string node;
    int channel = -1;
    EventKind kind = EventKind::Fire;
    std::string detail;

    json::Value toJson() const;
};

/** Consumer of trace data; backends override what they can render. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One instant event (schema above). */
    virtual void event(const TraceRecord& record) = 0;

    /** A duration span on @p track, [start, start+duration) cycles. */
    virtual void span(const std::string& track, const std::string& name,
                      double start_cycle, double duration_cycles)
    {
        (void)track;
        (void)name;
        (void)start_cycle;
        (void)duration_cycles;
    }

    /** A sampled counter value on @p track at @p cycle. */
    virtual void counter(const std::string& track, double cycle,
                         double value)
    {
        (void)track;
        (void)cycle;
        (void)value;
    }
};

/**
 * Chrome trace_event ("Trace Event Format") backend. Events buffer in
 * memory; toJson()/dump()/writeFile() emit the {"traceEvents": [...]}
 * document. Each distinct node/track name becomes its own thread row
 * (named via thread_name metadata events).
 */
class PerfettoTraceSink : public TraceSink
{
  public:
    void event(const TraceRecord& record) override;
    void span(const std::string& track, const std::string& name,
              double start_cycle, double duration_cycles) override;
    void counter(const std::string& track, double cycle,
                 double value) override;

    std::size_t numEvents() const { return events_.size(); }

    json::Value toJson() const;
    std::string dump() const { return toJson().dump(); }
    Result<bool> writeFile(const std::string& path) const;

  private:
    /** Stable small integer per track name (Perfetto tid). */
    int trackId(const std::string& name);

    std::vector<json::Value> events_;
    std::map<std::string, int> tracks_;
};

/**
 * Value-change-dump writer. Declare signals with wire(), then begin()
 * freezes the header and sample() records change-only transitions.
 * Payload values wider than the declared width are truncated (VCD
 * semantics). Output accumulates in memory; str()/writeFile() render
 * the document.
 */
class VcdWriter
{
  public:
    explicit VcdWriter(std::string module_name = "graphiti",
                       std::string timescale = "1ns");

    /** Declare a signal before begin(); returns its handle. */
    int wire(const std::string& name, int width = 1);

    /** Emit the header ($timescale, $var..., initial x dump). */
    void begin();

    /** Record @p value on @p handle at @p time (change-only). */
    void sample(std::uint64_t time, int handle, std::uint64_t value);

    std::size_t numSignals() const { return signals_.size(); }
    bool started() const { return started_; }

    const std::string& str() const { return out_; }
    Result<bool> writeFile(const std::string& path) const;

  private:
    struct Signal
    {
        std::string name;
        int width = 1;
        std::string id;
        std::uint64_t last = 0;
        bool ever_sampled = false;
    };

    void emitTime(std::uint64_t time);
    void emitValue(const Signal& signal, std::uint64_t value);
    static std::string idFor(std::size_t index);
    static std::string sanitize(const std::string& name);

    std::string module_;
    std::string timescale_;
    std::vector<Signal> signals_;
    std::string out_;
    bool started_ = false;
    std::uint64_t current_time_ = 0;
    bool time_emitted_ = false;
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_TRACE_HPP
