#ifndef GRAPHITI_OBS_TRACE_HPP
#define GRAPHITI_OBS_TRACE_HPP

/**
 * @file
 * Structured runtime traces: the stable event schema shared by
 * sim::SimResult and the trace sinks, a Chrome/Perfetto trace_event
 * JSON backend (open the file in chrome://tracing or ui.perfetto.dev)
 * and a VCD waveform writer (open in GTKWave).
 *
 * Timestamps are simulator cycles, rendered as microseconds in the
 * Perfetto file (one cycle = 1 us) so the trace UI's time axis reads
 * directly as cycle numbers.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "support/result.hpp"

namespace graphiti::obs {

/** What a trace record describes. */
enum class EventKind
{
    Fire,     ///< a node moved tokens this cycle
    Stall,    ///< a node held tokens but could not fire
    Emit,     ///< a pipelined unit delivered a result token
    Fault,    ///< an injected fault held back an otherwise-legal move
    Output,   ///< a token arrived at a graph output
    Verdict,  ///< the watchdog classified a stuck run
    Phase,    ///< a compiler phase boundary
};

const char* toString(EventKind kind);

/**
 * The stable trace schema: one record per event, shared by
 * sim::TraceEvent (an alias of this struct) and every TraceSink
 * backend. `channel` is the simulator channel index when the event
 * concerns one (-1 otherwise); `detail` carries free-form context
 * (token text, refusal reason, ...).
 */
struct TraceRecord
{
    std::size_t cycle = 0;
    std::string node;
    int channel = -1;
    EventKind kind = EventKind::Fire;
    std::string detail;

    json::Value toJson() const;
};

/** Consumer of trace data; backends override what they can render. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One instant event (schema above). */
    virtual void event(const TraceRecord& record) = 0;

    /** A duration span on @p track, [start, start+duration) cycles. */
    virtual void span(const std::string& track, const std::string& name,
                      double start_cycle, double duration_cycles)
    {
        (void)track;
        (void)name;
        (void)start_cycle;
        (void)duration_cycles;
    }

    /** A sampled counter value on @p track at @p cycle. */
    virtual void counter(const std::string& track, double cycle,
                         double value)
    {
        (void)track;
        (void)cycle;
        (void)value;
    }
};

/**
 * Chrome trace_event ("Trace Event Format") backend. Events buffer in
 * memory; toJson()/dump()/writeFile() emit the {"traceEvents": [...]}
 * document. Each distinct node/track name becomes its own thread row
 * (named via thread_name metadata events).
 *
 * By default the buffer is unbounded (short runs keep everything, the
 * historical behaviour). Long runs can bound it with setCapacity():
 * when full, the oldest events are dropped — or, with setSpillFile(),
 * flushed to disk and stitched back into a complete document by
 * writeFile().
 */
class PerfettoTraceSink : public TraceSink
{
  public:
    void event(const TraceRecord& record) override;
    void span(const std::string& track, const std::string& name,
              double start_cycle, double duration_cycles) override;
    void counter(const std::string& track, double cycle,
                 double value) override;

    /** Events currently buffered in memory. */
    std::size_t numEvents() const { return events_.size(); }

    /** Bound the in-memory buffer; 0 (the default) = unbounded. */
    void setCapacity(std::size_t max_events) { capacity_ = max_events; }
    std::size_t capacity() const { return capacity_; }

    /**
     * Flush-on-overflow target: events evicted by the capacity bound
     * are appended to @p path (one JSON event per line) instead of
     * being dropped. The file is truncated now; writeFile() stitches
     * the spilled prefix and the live buffer back into one complete
     * traceEvents document.
     */
    Result<bool> setSpillFile(const std::string& path);

    /** Events lost to the capacity bound (no spill file set). */
    std::size_t droppedEvents() const { return dropped_; }
    /** Events flushed to the spill file. */
    std::size_t spilledEvents() const { return spilled_; }

    /** The buffered window only (spilled events live on disk). */
    json::Value toJson() const;
    std::string dump() const { return toJson().dump(); }
    /** The full document: spilled prefix + buffered window. */
    Result<bool> writeFile(const std::string& path) const;

  private:
    /** Stable small integer per track name (Perfetto tid). */
    int trackId(const std::string& name);
    /** Buffer one rendered event, honouring the capacity bound. */
    void bufferEvent(json::Value event);
    /** Append the whole buffer to the spill file and clear it. */
    void spillAll();

    std::deque<json::Value> events_;
    std::map<std::string, int> tracks_;
    std::size_t capacity_ = 0;
    std::size_t dropped_ = 0;
    std::size_t spilled_ = 0;
    std::string spill_path_;
};

/**
 * Value-change-dump writer. Declare signals with wire(), then begin()
 * freezes the header and sample() records change-only transitions.
 * Payload values wider than the declared width are truncated (VCD
 * semantics). Output accumulates in memory; str()/writeFile() render
 * the document.
 */
class VcdWriter
{
  public:
    explicit VcdWriter(std::string module_name = "graphiti",
                       std::string timescale = "1ns");

    /** Declare a signal before begin(); returns its handle. */
    int wire(const std::string& name, int width = 1);

    /** Emit the header ($timescale, $var..., initial x dump). */
    void begin();

    /** Record @p value on @p handle at @p time (change-only). */
    void sample(std::uint64_t time, int handle, std::uint64_t value);

    std::size_t numSignals() const { return signals_.size(); }
    bool started() const { return started_; }

    const std::string& str() const { return out_; }
    Result<bool> writeFile(const std::string& path) const;

  private:
    struct Signal
    {
        std::string name;
        int width = 1;
        std::string id;
        std::uint64_t last = 0;
        bool ever_sampled = false;
    };

    void emitTime(std::uint64_t time);
    void emitValue(const Signal& signal, std::uint64_t value);
    static std::string idFor(std::size_t index);
    static std::string sanitize(const std::string& name);

    std::string module_;
    std::string timescale_;
    std::vector<Signal> signals_;
    std::string out_;
    bool started_ = false;
    std::uint64_t current_time_ = 0;
    bool time_emitted_ = false;
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_TRACE_HPP
