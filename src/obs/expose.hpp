#ifndef GRAPHITI_OBS_EXPOSE_HPP
#define GRAPHITI_OBS_EXPOSE_HPP

/**
 * @file
 * Prometheus-style text exposition of the metrics plane
 * (docs/verification_observability.md).
 *
 * A fleet of graphiti-served daemons is only operable if a scraper
 * can read their counters without speaking the framed protocol. This
 * module renders a MetricsRegistry snapshot (plus ad-hoc counters,
 * gauges and latency-reservoir quantiles) as the text exposition
 * format every scraper understands:
 *
 *     # TYPE graphiti_refine_states_total counter
 *     graphiti_refine_states_total 184520
 *     graphiti_served_request_ms{quantile="0.99"} 41.7
 *
 * Dotted metric names (`refine.states`) are sanitized to underscore
 * form with a `graphiti_` prefix; counters gain the conventional
 * `_total` suffix. Rendering is sorted by output name, so two
 * snapshots of equal state are byte-identical — the same discipline
 * every JSON snapshot in this codebase follows.
 *
 * parseExposition() is the minimal line parser the round-trip tests
 * (and a curious shell script) use; it is not a full openmetrics
 * parser and does not try to be.
 *
 * ExpositionServer is a deliberately tiny HTTP/1.0 responder bound to
 * loopback: every request — whatever the path — gets the provider's
 * current rendering as text/plain. No keep-alive, no routing, no TLS;
 * `curl localhost:PORT/metricsz` works and that is the whole point.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "support/result.hpp"
#include "support/socket.hpp"

namespace graphiti::obs::expo {

/** `refine.states` -> `graphiti_refine_states` (prefix + sanitize). */
std::string metricName(const std::string& dotted,
                       const std::string& prefix = "graphiti_");

/** One parsed exposition sample. */
struct Sample
{
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

/**
 * Incremental builder of one exposition document. Emission order is
 * whatever order the caller feeds; renderRegistry() feeds sorted.
 */
class TextExposition
{
  public:
    /** A monotonically increasing counter (appends `_total`). */
    void counter(const std::string& dotted, double value);

    /** A point-in-time gauge. */
    void gauge(const std::string& dotted, double value);

    /** A duration histogram as a summary: `_seconds_count`,
     * `_seconds_sum` and a `_seconds_max` gauge. */
    void timer(const std::string& dotted, const TimerStats& stats);

    /** A latency reservoir as quantile samples (p50/p90/p99) plus
     * `_count` and `_max`; values are milliseconds by convention. */
    void reservoir(const std::string& dotted,
                   const LatencyReservoir& window);

    /** One raw pre-sanitized sample line (no TYPE header). */
    void sample(const std::string& name, double value);

    const std::string& str() const { return out_; }

  private:
    void typeLine(const std::string& name, const char* type);

    std::string out_;
};

/**
 * Render every counter, gauge and timer of @p registry into @p out,
 * sorted by name. Returns the number of samples emitted.
 */
std::size_t renderRegistry(const MetricsRegistry& registry,
                           TextExposition& out);

/** Parse an exposition document back into samples (comments and
 * blank lines skipped). Fails on a malformed sample line. */
Result<std::vector<Sample>> parseExposition(const std::string& text);

/**
 * The loopback scrape endpoint behind `graphiti-served --expose`.
 * Single accept thread, one short-lived connection per request.
 */
class ExpositionServer
{
  public:
    using Provider = std::function<std::string()>;

    ~ExpositionServer();

    /** Bind loopback @p port (0 = ephemeral) and serve @p provider's
     * rendering to every request. */
    Result<bool> start(std::uint16_t port, Provider provider);

    /** Close the listener and join the accept thread (idempotent). */
    void stop();

    /** The port actually bound (after start). */
    std::uint16_t port() const { return port_; }

    /** Requests answered since start. */
    std::uint64_t scrapes() const
    {
        return scrapes_.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();

    Provider provider_;
    net::Socket listener_;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> scrapes_{0};
    std::uint16_t port_ = 0;
    bool started_ = false;
};

}  // namespace graphiti::obs::expo

#endif  // GRAPHITI_OBS_EXPOSE_HPP
