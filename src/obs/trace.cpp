#include "obs/trace.hpp"

#include <fstream>
#include <utility>

namespace graphiti::obs {

const char*
toString(EventKind kind)
{
    switch (kind) {
        case EventKind::Fire: return "fire";
        case EventKind::Stall: return "stall";
        case EventKind::Emit: return "emit";
        case EventKind::Fault: return "fault";
        case EventKind::Output: return "output";
        case EventKind::Verdict: return "verdict";
        case EventKind::Phase: return "phase";
    }
    return "unknown";
}

json::Value
TraceRecord::toJson() const
{
    json::Value out{json::Object{}};
    out.set("cycle", cycle);
    out.set("node", node);
    out.set("channel", channel);
    out.set("kind", toString(kind));
    out.set("detail", detail);
    return out;
}

int
PerfettoTraceSink::trackId(const std::string& name)
{
    auto it = tracks_.find(name);
    if (it != tracks_.end())
        return it->second;
    int tid = static_cast<int>(tracks_.size()) + 1;
    tracks_.emplace(name, tid);
    // Name the thread row so the UI shows the node, not a number.
    json::Value meta{json::Object{}};
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", tid);
    json::Value args{json::Object{}};
    args.set("name", name);
    meta.set("args", std::move(args));
    bufferEvent(std::move(meta));
    return tid;
}

void
PerfettoTraceSink::event(const TraceRecord& record)
{
    json::Value ev{json::Object{}};
    ev.set("name", record.detail.empty()
                       ? std::string(toString(record.kind))
                       : std::string(toString(record.kind)) + " " +
                             record.detail);
    ev.set("cat", toString(record.kind));
    ev.set("ph", "i");
    ev.set("s", "t");
    ev.set("ts", static_cast<double>(record.cycle));
    ev.set("pid", 1);
    ev.set("tid", trackId(record.node));
    if (record.channel >= 0) {
        json::Value args{json::Object{}};
        args.set("channel", record.channel);
        ev.set("args", std::move(args));
    }
    bufferEvent(std::move(ev));
}

void
PerfettoTraceSink::span(const std::string& track, const std::string& name,
                        double start_cycle, double duration_cycles)
{
    json::Value ev{json::Object{}};
    ev.set("name", name);
    ev.set("cat", "span");
    ev.set("ph", "X");
    ev.set("ts", start_cycle);
    ev.set("dur", duration_cycles);
    ev.set("pid", 1);
    ev.set("tid", trackId(track));
    bufferEvent(std::move(ev));
}

void
PerfettoTraceSink::counter(const std::string& track, double cycle,
                           double value)
{
    json::Value ev{json::Object{}};
    ev.set("name", track);
    ev.set("ph", "C");
    ev.set("ts", cycle);
    ev.set("pid", 1);
    // Counter tracks key on pid+name; tid 0 keeps them off the
    // per-node thread rows.
    ev.set("tid", 0);
    json::Value args{json::Object{}};
    args.set("value", value);
    ev.set("args", std::move(args));
    bufferEvent(std::move(ev));
}

json::Value
PerfettoTraceSink::toJson() const
{
    json::Value out{json::Object{}};
    json::Value trace_events{json::Array{}};
    for (const json::Value& ev : events_)
        trace_events.push(ev);
    out.set("traceEvents", std::move(trace_events));
    out.set("displayTimeUnit", "ms");
    if (dropped_ > 0)
        out.set("droppedEvents", dropped_);
    if (spilled_ > 0)
        out.set("spilledEvents", spilled_);
    return out;
}

void
PerfettoTraceSink::bufferEvent(json::Value event)
{
    if (capacity_ != 0 && events_.size() >= capacity_) {
        if (!spill_path_.empty()) {
            spillAll();
        } else {
            while (events_.size() >= capacity_) {
                events_.pop_front();
                ++dropped_;
            }
        }
    }
    events_.push_back(std::move(event));
}

void
PerfettoTraceSink::spillAll()
{
    std::ofstream out(spill_path_, std::ios::app);
    if (!out) {
        // Spill target went away: degrade to dropping the oldest.
        while (capacity_ != 0 && events_.size() >= capacity_) {
            events_.pop_front();
            ++dropped_;
        }
        return;
    }
    for (const json::Value& ev : events_)
        out << ev.dump() << '\n';
    spilled_ += events_.size();
    events_.clear();
}

Result<bool>
PerfettoTraceSink::setSpillFile(const std::string& path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return err("cannot open spill file " + path + " for writing");
    spill_path_ = path;
    return true;
}

Result<bool>
PerfettoTraceSink::writeFile(const std::string& path) const
{
    if (spilled_ == 0)
        return json::writeFile(path, toJson());

    // Stitch the spilled prefix and the live buffer back together
    // without materialising the whole document in memory.
    std::ofstream out(path);
    if (!out)
        return err("cannot open " + path + " for writing");
    out << "{\"traceEvents\":[";
    bool first = true;
    std::ifstream spill(spill_path_);
    std::string line;
    while (std::getline(spill, line)) {
        if (line.empty())
            continue;
        if (!first)
            out << ',';
        out << line;
        first = false;
    }
    for (const json::Value& ev : events_) {
        if (!first)
            out << ',';
        out << ev.dump();
        first = false;
    }
    out << "],\"displayTimeUnit\":\"ms\"";
    if (dropped_ > 0)
        out << ",\"droppedEvents\":" << dropped_;
    out << "}";
    if (!out)
        return err("write to " + path + " failed");
    return true;
}

VcdWriter::VcdWriter(std::string module_name, std::string timescale)
    : module_(sanitize(module_name)), timescale_(std::move(timescale))
{
}

std::string
VcdWriter::sanitize(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty())
        out = "sig";
    return out;
}

std::string
VcdWriter::idFor(std::size_t index)
{
    // Printable identifier code, base 94 over '!'..'~'.
    std::string id;
    do {
        id += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return id;
}

int
VcdWriter::wire(const std::string& name, int width)
{
    Signal signal;
    signal.name = sanitize(name);
    signal.width = width < 1 ? 1 : width;
    signal.id = idFor(signals_.size());
    signals_.push_back(std::move(signal));
    return static_cast<int>(signals_.size()) - 1;
}

void
VcdWriter::begin()
{
    if (started_)
        return;
    started_ = true;
    out_ += "$date graphiti simulation $end\n";
    out_ += "$version graphiti obs vcd writer $end\n";
    out_ += "$timescale " + timescale_ + " $end\n";
    out_ += "$scope module " + module_ + " $end\n";
    for (const Signal& signal : signals_)
        out_ += "$var wire " + std::to_string(signal.width) + " " +
                signal.id + " " + signal.name + " $end\n";
    out_ += "$upscope $end\n";
    out_ += "$enddefinitions $end\n";
    out_ += "$dumpvars\n";
    for (const Signal& signal : signals_) {
        if (signal.width == 1)
            out_ += "x" + signal.id + "\n";
        else
            out_ += "bx " + signal.id + "\n";
    }
    out_ += "$end\n";
}

void
VcdWriter::emitTime(std::uint64_t time)
{
    if (time_emitted_ && time == current_time_)
        return;
    out_ += "#" + std::to_string(time) + "\n";
    current_time_ = time;
    time_emitted_ = true;
}

void
VcdWriter::emitValue(const Signal& signal, std::uint64_t value)
{
    if (signal.width == 1) {
        out_ += (value & 1) ? "1" : "0";
        out_ += signal.id;
        out_ += "\n";
        return;
    }
    std::string bits;
    for (int b = signal.width - 1; b >= 0; --b)
        bits += ((value >> b) & 1) ? '1' : '0';
    // Strip leading zeros (VCD convention), keeping at least one bit.
    std::size_t first = bits.find('1');
    if (first == std::string::npos)
        bits = "0";
    else
        bits = bits.substr(first);
    out_ += "b" + bits + " " + signal.id + "\n";
}

void
VcdWriter::sample(std::uint64_t time, int handle, std::uint64_t value)
{
    if (!started_ || handle < 0 ||
        handle >= static_cast<int>(signals_.size()))
        return;
    Signal& signal = signals_[static_cast<std::size_t>(handle)];
    if (signal.width < 64)
        value &= (std::uint64_t{1} << signal.width) - 1;
    if (signal.ever_sampled && signal.last == value)
        return;
    emitTime(time);
    emitValue(signal, value);
    signal.last = value;
    signal.ever_sampled = true;
}

Result<bool>
VcdWriter::writeFile(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return err("cannot open " + path + " for writing");
    out << out_;
    if (!out)
        return err("write to " + path + " failed");
    return true;
}

}  // namespace graphiti::obs
