#ifndef GRAPHITI_OBS_SCOPE_HPP
#define GRAPHITI_OBS_SCOPE_HPP

/**
 * @file
 * The instrumentation entry point: an obs::Scope bundles the metrics
 * registry with optional trace/waveform sinks, and a thread-local
 * "current scope" lets deeply nested layers (the e-graph oracle, the
 * state-space explorer) record without threading a pointer through
 * every signature.
 *
 * Zero cost when disabled: every call site in sim/rewrite/refine goes
 * through the GRAPHITI_OBS_* macros below, which expand to nothing
 * when the build sets GRAPHITI_OBS_ENABLED=0 (CMake option
 * GRAPHITI_OBS=OFF). The obs library itself (registry, sinks, JSON)
 * always builds — only the hot-path hooks compile out.
 *
 * Usage:
 *
 *     obs::Scope scope;
 *     scope.attachTrace(std::make_shared<obs::PerfettoTraceSink>());
 *     obs::ScopedInstall install(&scope);
 *     ... run compiler / simulator / checker ...
 *     scope.metrics().toJson();
 */

#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "obs/vprobe.hpp"

// Default to enabled when built outside CMake (the option defines it).
#ifndef GRAPHITI_OBS_ENABLED
#define GRAPHITI_OBS_ENABLED 1
#endif

namespace graphiti::obs {

/** One observation context: a registry plus optional sinks. */
class Scope
{
  public:
    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }

    /** The trace sink; nullptr when event tracing is off. */
    TraceSink* trace() const { return trace_.get(); }
    void attachTrace(std::shared_ptr<TraceSink> sink)
    {
        trace_ = std::move(sink);
    }

    /** The waveform writer; nullptr when VCD capture is off. */
    VcdWriter* vcd() const { return vcd_.get(); }
    void attachVcd(std::shared_ptr<VcdWriter> vcd)
    {
        vcd_ = std::move(vcd);
    }

    /** The provenance tracker; nullptr when hop logging is off. */
    ProvenanceTracker* provenance() const { return provenance_.get(); }
    void attachProvenance(std::shared_ptr<ProvenanceTracker> tracker)
    {
        provenance_ = std::move(tracker);
    }

    /** The live verification probe; nullptr when nothing tails
     * progress (docs/verification_observability.md). */
    VerifyProbe* verifyProbe() const { return vprobe_.get(); }
    void attachVerifyProbe(std::shared_ptr<VerifyProbe> probe)
    {
        vprobe_ = std::move(probe);
    }

  private:
    MetricsRegistry metrics_;
    std::shared_ptr<TraceSink> trace_;
    std::shared_ptr<VcdWriter> vcd_;
    std::shared_ptr<ProvenanceTracker> provenance_;
    std::shared_ptr<VerifyProbe> vprobe_;
};

/** The thread's current scope; nullptr when nothing observes. */
Scope* current();

/** Install @p scope as current (nullptr allowed); returns previous. */
Scope* install(Scope* scope);

/** RAII install/restore of the thread-local current scope. */
class ScopedInstall
{
  public:
    explicit ScopedInstall(Scope* scope) : previous_(install(scope)) {}
    ~ScopedInstall() { install(previous_); }

    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

  private:
    Scope* previous_;
};

/** Timer helper the macro expands to: inert when nothing observes. */
inline ScopedTimer
timerFor(Scope* scope, const char* name)
{
    if (scope == nullptr)
        return {};
    return scope->metrics().timer(name);
}

}  // namespace graphiti::obs

#if GRAPHITI_OBS_ENABLED

/** Increment a counter on the current scope. */
#define GRAPHITI_OBS_COUNT(name, delta)                                  \
    do {                                                                 \
        if (::graphiti::obs::Scope* obs_scope_ =                         \
                ::graphiti::obs::current())                              \
            obs_scope_->metrics().add((name), (delta));                  \
    } while (0)

/** Set a gauge on the current scope. */
#define GRAPHITI_OBS_GAUGE(name, value)                                  \
    do {                                                                 \
        if (::graphiti::obs::Scope* obs_scope_ =                         \
                ::graphiti::obs::current())                              \
            obs_scope_->metrics().set((name),                            \
                                      static_cast<double>(value));       \
    } while (0)

/** Raise a high-water-mark gauge on the current scope. */
#define GRAPHITI_OBS_GAUGE_MAX(name, value)                              \
    do {                                                                 \
        if (::graphiti::obs::Scope* obs_scope_ =                         \
                ::graphiti::obs::current())                              \
            obs_scope_->metrics().setMax((name),                         \
                                         static_cast<double>(value));    \
    } while (0)

/** Record one duration observation on the current scope. */
#define GRAPHITI_OBS_OBSERVE(name, seconds)                              \
    do {                                                                 \
        if (::graphiti::obs::Scope* obs_scope_ =                         \
                ::graphiti::obs::current())                              \
            obs_scope_->metrics().observe((name), (seconds));            \
    } while (0)

/** Declare a scoped timer variable feeding the current scope. */
#define GRAPHITI_OBS_TIMER(var, name)                                    \
    ::graphiti::obs::ScopedTimer var =                                   \
        ::graphiti::obs::timerFor(::graphiti::obs::current(), (name))

/** Invoke one VerifyProbe method on the current scope's probe, e.g.
 * GRAPHITI_OBS_VPROBE(recordPark()). No-op when nothing observes. */
#define GRAPHITI_OBS_VPROBE(call)                                        \
    do {                                                                 \
        if (::graphiti::obs::Scope* obs_scope_ =                         \
                ::graphiti::obs::current())                              \
            if (::graphiti::obs::VerifyProbe* obs_probe_ =               \
                    obs_scope_->verifyProbe())                           \
                obs_probe_->call;                                        \
    } while (0)

/** Emit a counter-track sample to the current scope's trace sink. */
#define GRAPHITI_OBS_TRACK(track, cycle, value)                          \
    do {                                                                 \
        ::graphiti::obs::Scope* obs_scope_ =                             \
            ::graphiti::obs::current();                                  \
        if (obs_scope_ != nullptr && obs_scope_->trace() != nullptr)     \
            obs_scope_->trace()->counter(                                \
                (track), static_cast<double>(cycle),                     \
                static_cast<double>(value));                             \
    } while (0)

#else  // !GRAPHITI_OBS_ENABLED

#define GRAPHITI_OBS_COUNT(name, delta) do { } while (0)
#define GRAPHITI_OBS_GAUGE(name, value) do { } while (0)
#define GRAPHITI_OBS_GAUGE_MAX(name, value) do { } while (0)
#define GRAPHITI_OBS_OBSERVE(name, seconds) do { } while (0)
#define GRAPHITI_OBS_TIMER(var, name) ::graphiti::obs::ScopedTimer var{}
#define GRAPHITI_OBS_VPROBE(call) do { } while (0)
#define GRAPHITI_OBS_TRACK(track, cycle, value) do { } while (0)

#endif  // GRAPHITI_OBS_ENABLED

#endif  // GRAPHITI_OBS_SCOPE_HPP
