#include "obs/scope.hpp"

namespace graphiti::obs {

namespace {

thread_local Scope* g_current = nullptr;

}  // namespace

Scope*
current()
{
    return g_current;
}

Scope*
install(Scope* scope)
{
    Scope* previous = g_current;
    g_current = scope;
    return previous;
}

}  // namespace graphiti::obs
