#ifndef GRAPHITI_OBS_LATENCY_HPP
#define GRAPHITI_OBS_LATENCY_HPP

/**
 * @file
 * A bounded latency reservoir with percentile summaries.
 *
 * The served bench and daemon report p50/p99 request latency; the
 * metrics registry's histograms track durations but not order
 * statistics. This reservoir keeps the most recent `capacity` samples
 * in a ring (full recall of a bounded window beats approximate recall
 * of everything for a soak that runs minutes, and keeps memory flat
 * on one that runs days), plus exact running count/mean/max over all
 * samples ever recorded. Thread-safe; percentile queries sort a copy
 * of the window, so keep them off hot paths.
 */

#include <cstddef>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace graphiti::obs {

/** Bounded sliding-window latency sampler. */
class LatencyReservoir
{
  public:
    explicit LatencyReservoir(std::size_t capacity = 4096);

    /** Record one sample (milliseconds by convention). */
    void record(double ms);

    /** Samples ever recorded (not just those still in the window). */
    std::size_t count() const;

    /**
     * Percentile @p p in [0, 100] over the current window, by
     * nearest-rank; 0.0 when empty.
     */
    double percentile(double p) const;

    double max() const;
    double mean() const;

    /** {count, window, p50, p90, p99, max, mean}. */
    json::Value toJson() const;

  private:
    mutable std::mutex mutex_;
    std::vector<double> window_;
    std::size_t capacity_;
    std::size_t next_ = 0;       ///< ring cursor
    std::size_t count_ = 0;      ///< lifetime samples
    double sum_ = 0.0;
    double max_ = 0.0;
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_LATENCY_HPP
