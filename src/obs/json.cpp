#include "obs/json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace graphiti::obs::json {

std::string
escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += static_cast<char>(c);
                }
        }
    }
    return out;
}

const Value*
Value::find(const std::string& key) const
{
    if (!isObject())
        return nullptr;
    for (const auto& [k, v] : asObject())
        if (k == key)
            return &v;
    return nullptr;
}

Value&
Value::set(const std::string& key, Value value)
{
    if (!isObject())
        repr_ = Object{};
    for (auto& [k, v] : std::get<Object>(repr_)) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    std::get<Object>(repr_).emplace_back(key, std::move(value));
    return *this;
}

Value&
Value::push(Value value)
{
    if (!isArray())
        repr_ = Array{};
    std::get<Array>(repr_).push_back(std::move(value));
    return *this;
}

Value&
Value::sortKeys()
{
    if (isObject()) {
        Object& fields = std::get<Object>(repr_);
        std::stable_sort(fields.begin(), fields.end(),
                         [](const auto& a, const auto& b) {
                             return a.first < b.first;
                         });
        for (auto& [key, value] : fields)
            value.sortKeys();
    } else if (isArray()) {
        for (Value& element : std::get<Array>(repr_))
            element.sortKeys();
    }
    return *this;
}

namespace {

std::string
numberToString(double d)
{
    if (!std::isfinite(d))
        return "null";  // JSON has no inf/nan
    // Integers (the common case: cycles, counts) print without a
    // fraction so traces stay diff-friendly.
    if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    return buf;
}

}  // namespace

void
Value::dumpTo(std::string& out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent < 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    if (isNull()) {
        out += "null";
    } else if (isBool()) {
        out += asBool() ? "true" : "false";
    } else if (isNumber()) {
        out += numberToString(asNumber());
    } else if (isString()) {
        out += '"';
        out += escape(asString());
        out += '"';
    } else if (isArray()) {
        const Array& items = asArray();
        out += '[';
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            items[i].dumpTo(out, indent, depth + 1);
        }
        if (!items.empty())
            newline(depth);
        out += ']';
    } else {
        const Object& fields = asObject();
        out += '{';
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += escape(fields[i].first);
            out += "\":";
            if (indent >= 0)
                out += ' ';
            fields[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!fields.empty())
            newline(depth);
        out += '}';
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over the whole document. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Result<Value>
    parseDocument()
    {
        Result<Value> v = parseValue();
        if (!v.ok())
            return v;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters");
        return v;
    }

  private:
    Error
    fail(const std::string& what) const
    {
        return Error("json parse error at offset " +
                     std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char* word)
    {
        std::size_t len = std::string_view(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Result<Value>
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            Result<std::string> s = parseString();
            if (!s.ok())
                return s.error();
            return Value(s.take());
        }
        if (consumeWord("true"))
            return Value(true);
        if (consumeWord("false"))
            return Value(false);
        if (consumeWord("null"))
            return Value(nullptr);
        return parseNumber();
    }

    Result<Value>
    parseNumber()
    {
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        double d = std::strtod(begin, &end);
        if (end == begin)
            return fail("expected a value");
        pos_ += static_cast<std::size_t>(end - begin);
        return Value(d);
    }

    Result<std::string>
    parseString()
    {
        if (!consume('"'))
            return fail("expected '\"'");
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // UTF-8 encode the BMP codepoint (surrogate pairs
                    // are beyond what metric names need).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    Result<Value>
    parseArray()
    {
        consume('[');
        Array items;
        skipWs();
        if (consume(']'))
            return Value(std::move(items));
        while (true) {
            Result<Value> v = parseValue();
            if (!v.ok())
                return v;
            items.push_back(v.take());
            skipWs();
            if (consume(']'))
                return Value(std::move(items));
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    Result<Value>
    parseObject()
    {
        consume('{');
        Object fields;
        skipWs();
        if (consume('}'))
            return Value(std::move(fields));
        while (true) {
            skipWs();
            Result<std::string> key = parseString();
            if (!key.ok())
                return key.error();
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            Result<Value> v = parseValue();
            if (!v.ok())
                return v;
            fields.emplace_back(key.take(), v.take());
            skipWs();
            if (consume('}'))
                return Value(std::move(fields));
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

Result<Value>
parse(const std::string& text)
{
    return Parser(text).parseDocument();
}

Result<bool>
writeFile(const std::string& path, const Value& value)
{
    std::ofstream out(path);
    if (!out)
        return err("cannot open " + path + " for writing");
    out << value.dump(2) << "\n";
    // Flush before checking: a small document fits the stream buffer
    // entirely, so without this the first write syscall happens at
    // destruction and an ENOSPC/EIO there would be silently dropped.
    out.flush();
    if (!out)
        return err("write to " + path + " failed");
    return true;
}

Result<bool>
writeFileAtomic(const std::string& path, const Value& value)
{
    std::string tmp = path + ".tmp";
    Result<bool> wrote = writeFile(tmp, value);
    if (!wrote.ok())
        return wrote.error();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return err("rename " + tmp + " -> " + path + " failed");
    }
    return true;
}

}  // namespace graphiti::obs::json
