#ifndef GRAPHITI_OBS_JSON_HPP
#define GRAPHITI_OBS_JSON_HPP

/**
 * @file
 * A minimal JSON document model: enough to emit metrics snapshots,
 * Chrome/Perfetto trace files and bench records, and to parse them
 * back (the round-trip the obs tests rely on). No external
 * dependencies; numbers are doubles, objects preserve key order.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "support/result.hpp"

namespace graphiti::obs::json {

/** Escape @p text for inclusion in a JSON string literal. */
std::string escape(const std::string& text);

class Value;

using Array = std::vector<Value>;
/** Key/value pairs in insertion order (traces read better that way). */
using Object = std::vector<std::pair<std::string, Value>>;

/** One JSON value: null, bool, number, string, array or object. */
class Value
{
  public:
    Value() : repr_(nullptr) {}
    Value(std::nullptr_t) : repr_(nullptr) {}
    Value(bool b) : repr_(b) {}
    Value(double d) : repr_(d) {}
    Value(int i) : repr_(static_cast<double>(i)) {}
    Value(std::int64_t i) : repr_(static_cast<double>(i)) {}
    Value(std::size_t i) : repr_(static_cast<double>(i)) {}
    Value(std::string s) : repr_(std::move(s)) {}
    Value(const char* s) : repr_(std::string(s)) {}
    Value(Array a) : repr_(std::move(a)) {}
    Value(Object o) : repr_(std::move(o)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(repr_); }
    bool isBool() const { return std::holds_alternative<bool>(repr_); }
    bool isNumber() const { return std::holds_alternative<double>(repr_); }
    bool isString() const { return std::holds_alternative<std::string>(repr_); }
    bool isArray() const { return std::holds_alternative<Array>(repr_); }
    bool isObject() const { return std::holds_alternative<Object>(repr_); }

    bool asBool() const { return std::get<bool>(repr_); }
    double asNumber() const { return std::get<double>(repr_); }
    const std::string& asString() const { return std::get<std::string>(repr_); }
    const Array& asArray() const { return std::get<Array>(repr_); }
    Array& asArray() { return std::get<Array>(repr_); }
    const Object& asObject() const { return std::get<Object>(repr_); }
    Object& asObject() { return std::get<Object>(repr_); }

    /** Object field access; null value when absent or not an object. */
    const Value* find(const std::string& key) const;

    /** Set (or replace) an object field; converts null to object. */
    Value& set(const std::string& key, Value value);

    /** Append to an array; converts null to array. */
    Value& push(Value value);

    /**
     * Recursively sort object keys (arrays keep element order).
     * Snapshots assembled from unordered containers call this before
     * emission so equal state always dumps byte-identical text —
     * gate diffs and golden tests must never be order-fragile.
     */
    Value& sortKeys();

    /** Render compactly (indent < 0) or pretty-printed. */
    std::string dump(int indent = -1) const;

    bool operator==(const Value& other) const = default;

  private:
    void dumpTo(std::string& out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        repr_;
};

/** Parse a JSON document; fails with position info on malformed text. */
Result<Value> parse(const std::string& text);

/** Write @p value to @p path (compact). */
Result<bool> writeFile(const std::string& path, const Value& value);

/**
 * Write @p value to @p path via write-temp-then-rename, so readers
 * never observe a torn document: they see the old file or the new
 * one, nothing in between (the verdict store and the flight recorder
 * both rely on this).
 */
Result<bool> writeFileAtomic(const std::string& path,
                             const Value& value);

}  // namespace graphiti::obs::json

#endif  // GRAPHITI_OBS_JSON_HPP
