#ifndef GRAPHITI_OBS_LOG_HPP
#define GRAPHITI_OBS_LOG_HPP

/**
 * @file
 * Structured service logging: one JSON-lines record per event, with a
 * level, a monotonic timestamp (milliseconds since the logger was
 * built — wall clocks jump, service timelines must not), a correlation
 * id (`job_id`, minted at admission and threaded through every layer a
 * job touches), an event name and free-form fields.
 *
 * The logger keeps a bounded in-memory ring (the `stats` verb and the
 * flight recorder read it back) and optionally appends each record to
 * a JSON-lines file as it happens. Thread-safe: the served daemon logs
 * from worker lanes, the supervisor and connection threads at once.
 *
 * Call sites in the service hot path go through the
 * GRAPHITI_SVC_* macros (served/observe.hpp), which compile to
 * nothing under -DGRAPHITI_OBS=OFF; the logger itself always builds.
 */

#include <chrono>
#include <cstddef>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "support/result.hpp"

namespace graphiti::obs {

/** Record severity, least to most urgent. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

const char* toString(LogLevel level);

/** One structured log record. */
struct LogRecord
{
    LogLevel level = LogLevel::Info;
    /** Milliseconds since the logger's epoch (monotonic clock). */
    double t_ms = 0.0;
    /** Correlation id; empty for service-level (non-job) events. */
    std::string job_id;
    /** Dotted event name, e.g. "job.admit", "job.shed". */
    std::string event;
    /** Free-form structured context (a JSON object or null). */
    json::Value fields;

    /** {t_ms, level, event, job_id?, fields?}. */
    json::Value toJson() const;
};

/** Build a fields object inline: logFields("key", v, "key2", v2). */
inline void addLogFields(json::Value&) {}

template <typename V, typename... Rest>
void
addLogFields(json::Value& out, const char* key, V&& value,
             Rest&&... rest)
{
    out.set(key, json::Value(std::forward<V>(value)));
    addLogFields(out, std::forward<Rest>(rest)...);
}

template <typename... Args>
json::Value
logFields(Args&&... args)
{
    json::Value out{json::Object{}};
    addLogFields(out, std::forward<Args>(args)...);
    return out;
}

/** Bounded, thread-safe structured logger. */
class Logger
{
  public:
    explicit Logger(std::size_t capacity = 1024);

    /** Append one record (stamped with the monotonic clock now). */
    void log(LogLevel level, const std::string& job_id,
             const std::string& event, json::Value fields = {});

    /** Drop records below @p level (default keeps everything). */
    void setMinLevel(LogLevel level);

    /**
     * Mirror every accepted record to @p path as JSON lines (append;
     * the file is created now so a crash leaves at least an empty
     * log). Thread-safe with log().
     */
    Result<bool> openFile(const std::string& path);

    /** Records ever accepted (including those the ring evicted). */
    std::size_t recorded() const;
    /** Records evicted from the ring (still in the file, if any). */
    std::size_t dropped() const;

    /** The newest @p n records, oldest first. */
    std::vector<LogRecord> tail(std::size_t n) const;

    /** {capacity, recorded, dropped, records: [...]}. */
    json::Value toJson() const;

    /** Milliseconds since this logger's epoch (monotonic). */
    double nowMs() const;

  private:
    mutable std::mutex mutex_;
    std::deque<LogRecord> ring_;
    std::size_t capacity_;
    std::size_t recorded_ = 0;
    std::size_t dropped_ = 0;
    LogLevel min_level_ = LogLevel::Debug;
    std::ofstream file_;
    bool file_open_ = false;
    std::chrono::steady_clock::time_point epoch_;
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_LOG_HPP
