#ifndef GRAPHITI_OBS_CRITPATH_HPP
#define GRAPHITI_OBS_CRITPATH_HPP

/**
 * @file
 * Offline critical-path analysis over a ProvenanceLog.
 *
 * The hop log is a last-arrival graph: each firing consumed one token
 * per input channel, and the firing could not have happened before its
 * last-arriving input. For every collected output token the analyzer
 * walks that graph backwards — always following the consumed hop with
 * the latest enqueue cycle — until it reaches a birth. The cycles along
 * the walk are attributed exactly:
 *
 *   latency = completion_cycle - birth_cycle
 *           = sum over hops of (channel wait)
 *           + sum over firings of (emit gap)
 *
 * and each term splits without remainder:
 *
 *   channel wait  -> 1 transfer cycle        => compute
 *                    head-of-queue cycles while the consumer was
 *                    blocked on a full output => backpressure
 *                    everything else (starved consumer, behind other
 *                    tokens, tag window full) => queue wait
 *   emit gap      -> pipeline service latency => compute
 *                    completion-buffer stall  => backpressure
 *                    Tagger return->commit hold (reorder) => queue wait
 *
 * so per token compute + queue_wait + backpressure always equals the
 * measured latency (the acceptance criterion of the profiler). Tokens
 * whose chain crosses an evicted ring-buffer window are flagged
 * truncated and excluded from the identity and the histograms.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace graphiti::obs {

/** Where a token's cycles went. */
struct CycleAttribution
{
    std::uint64_t compute = 0;
    std::uint64_t queue_wait = 0;
    std::uint64_t backpressure = 0;

    std::uint64_t total() const
    {
        return compute + queue_wait + backpressure;
    }

    void operator+=(const CycleAttribution& other)
    {
        compute += other.compute;
        queue_wait += other.queue_wait;
        backpressure += other.backpressure;
    }

    json::Value toJson() const;
};

/** One rendered step of a critical path (most recent first). */
struct PathStep
{
    std::string node;
    int channel = -1;
    std::uint64_t fire_cycle = 0;
    std::uint32_t wait = 0;
    std::uint32_t bp_cycles = 0;
    std::uint32_t starve_cycles = 0;
    std::uint32_t emit_gap = 0;
};

/** Per-output-token profile. */
struct TokenProfile
{
    int port = 0;
    std::uint64_t ordinal = 0;
    std::uint64_t completion_cycle = 0;
    /** Chain crossed the evicted window; latency/attribution partial. */
    bool truncated = false;
    /** Originating birth seq; -1 when truncated. */
    std::int64_t origin_birth = -1;
    std::uint64_t birth_cycle = 0;
    std::uint64_t latency = 0;
    CycleAttribution attribution;
    std::size_t path_length = 0;
    /** Bounded rendering of the path (newest steps kept). */
    std::vector<PathStep> path;
};

/** Per-channel aggregates over all hops plus critical-path shares. */
struct ChannelProfile
{
    int channel = -1;
    std::string desc;
    std::uint64_t hops = 0;
    std::uint64_t wait_cycles = 0;
    std::uint64_t bp_cycles = 0;
    std::uint64_t starve_cycles = 0;
    /** Appearances on some output token's critical path. */
    std::uint64_t critical_hops = 0;
    /** Wait cycles contributed to critical paths. */
    std::uint64_t critical_wait_cycles = 0;
    std::size_t max_occupancy = 0;
    double avg_occupancy = 0.0;
};

/** A sparse integer histogram. */
struct Histogram
{
    std::map<std::uint64_t, std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;

    void add(std::uint64_t value);
    /** Empty, or every sample fell in bucket 0. */
    bool degenerate() const;
    json::Value toJson() const;
};

struct CritPathOptions
{
    /** Max rendered PathSteps kept per token (newest first). */
    std::size_t max_path_steps = 64;
    /** Max TokenProfiles rendered into JSON (aggregates stay exact). */
    std::size_t max_tokens = 4096;
};

/** The analysis result behind profile.json. */
struct CritPathReport
{
    std::uint64_t cycles = 0;
    std::vector<TokenProfile> tokens;
    /** Sum of attributions over non-truncated tokens. */
    CycleAttribution totals;
    std::uint64_t truncated_tokens = 0;
    std::vector<ChannelProfile> channels;
    /** Channel indices ranked by critical-path wait contribution. */
    std::vector<int> bottleneck_channels;
    /** Tagger reorder distances plus completion-order displacement. */
    Histogram reorder;
    Histogram completion_latency;
    std::uint64_t tag_returns = 0;
    /** JSON render cap for tokens (from CritPathOptions). */
    std::size_t max_tokens_json = 4096;

    json::Value toJson() const;
};

/** Replay @p log into per-token critical paths and attributions. */
CritPathReport analyzeCriticalPaths(const ProvenanceLog& log,
                                    const CritPathOptions& options = {});

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_CRITPATH_HPP
