#ifndef GRAPHITI_OBS_SPAN_HPP
#define GRAPHITI_OBS_SPAN_HPP

/**
 * @file
 * Service-level span tracking: named durations on named tracks, on a
 * shared monotonic millisecond timeline, recorded concurrently from
 * many threads and forwarded to one PerfettoTraceSink.
 *
 * Why not feed the sink directly? PerfettoTraceSink is deliberately
 * not thread-safe (the simulator feeds it from one thread); the
 * served daemon's workers, supervisor and connection threads all emit
 * spans at once. The SpanTracker owns a mutex, serializes every
 * record, keeps its own bounded ring (the `stats` verb reads it back
 * without a trace file), and forwards to the sink under the same
 * lock — so one service-level trace stitches all concurrent jobs,
 * each job's track keyed by its correlation id.
 *
 * Service spans use milliseconds as the sink's "cycle" unit: the
 * Perfetto UI renders one unit as 1 us, so a served trace reads in
 * milliseconds directly off the time axis.
 */

#include <chrono>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace graphiti::obs {

/** One completed span. */
struct SpanRecord
{
    /** Track name; the served scheduler uses the job's correlation
     * id, so every phase of one job shares a row. */
    std::string track;
    std::string name;
    double start_ms = 0.0;
    double duration_ms = 0.0;

    json::Value toJson() const;
};

/** Thread-safe span recorder with an optional Perfetto backend. */
class SpanTracker
{
  public:
    explicit SpanTracker(std::size_t capacity = 2048);

    /** Forward every span to @p sink (serialized by this tracker's
     * lock; the sink itself may stay single-threaded). */
    void attachSink(std::shared_ptr<TraceSink> sink);

    /** Milliseconds since this tracker's epoch (monotonic). */
    double nowMs() const;

    /** Record a completed span [@p start_ms, @p end_ms). */
    void record(const std::string& track, const std::string& name,
                double start_ms, double end_ms);

    /** RAII span: starts now, records at scope exit. */
    class Scoped
    {
      public:
        Scoped(SpanTracker* tracker, std::string track,
               std::string name);
        ~Scoped();

        Scoped(const Scoped&) = delete;
        Scoped& operator=(const Scoped&) = delete;

      private:
        SpanTracker* tracker_;
        std::string track_;
        std::string name_;
        double start_ms_ = 0.0;
    };

    Scoped span(std::string track, std::string name)
    {
        return Scoped(this, std::move(track), std::move(name));
    }

    std::size_t recorded() const;
    std::size_t dropped() const;

    /** The newest @p n spans, oldest first. */
    std::vector<SpanRecord> tail(std::size_t n) const;

    /** {capacity, recorded, dropped, spans: [...]}. */
    json::Value toJson() const;

  private:
    mutable std::mutex mutex_;
    std::deque<SpanRecord> ring_;
    std::size_t capacity_;
    std::size_t recorded_ = 0;
    std::size_t dropped_ = 0;
    std::shared_ptr<TraceSink> sink_;
    std::chrono::steady_clock::time_point epoch_;
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_SPAN_HPP
