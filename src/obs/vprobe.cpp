#include "obs/vprobe.hpp"

namespace graphiti::obs {

const char*
toString(VerifyPhase phase)
{
    switch (phase) {
        case VerifyPhase::Idle: return "idle";
        case VerifyPhase::Explore: return "explore";
        case VerifyPhase::Game: return "game";
        case VerifyPhase::TraceWalks: return "trace-walks";
    }
    return "unknown";
}

void
VerifyProbe::beginPhase(VerifyPhase phase, const char* rung)
{
    phase_.store(static_cast<std::uint8_t>(phase),
                 std::memory_order_relaxed);
    rung_.store(rung == nullptr ? "" : rung, std::memory_order_relaxed);
    // Per-phase gauges reset so a poller never reads the previous
    // phase's throughput against this phase's label; lifetime
    // counters (parks, peak bytes, samples) accumulate.
    states_per_second_.store(0.0, std::memory_order_relaxed);
    states_cap_pct_.store(0.0, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
}

void
VerifyProbe::publishExplore(std::uint64_t states,
                            std::uint64_t frontier,
                            double states_per_second, double cap_pct)
{
    states_.store(states, std::memory_order_relaxed);
    frontier_.store(frontier, std::memory_order_relaxed);
    states_per_second_.store(states_per_second,
                             std::memory_order_relaxed);
    states_cap_pct_.store(cap_pct, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
}

void
VerifyProbe::publishGame(std::uint64_t pairs, std::uint64_t round,
                         std::uint64_t alive)
{
    pairs_.store(pairs, std::memory_order_relaxed);
    round_.store(round, std::memory_order_relaxed);
    alive_.store(alive, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
}

void
VerifyProbe::recordPark()
{
    parks_.fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
}

void
VerifyProbe::recordResume()
{
    resumes_.fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
}

void
VerifyProbe::notePeakBytes(std::uint64_t bytes)
{
    std::uint64_t seen = peak_bytes_.load(std::memory_order_relaxed);
    while (seen < bytes &&
           !peak_bytes_.compare_exchange_weak(
               seen, bytes, std::memory_order_relaxed)) {
    }
}

void
VerifyProbe::setDeadlineRemaining(double seconds)
{
    deadline_remaining_s_.store(seconds, std::memory_order_relaxed);
}

VerifyProgress
VerifyProbe::snapshot() const
{
    VerifyProgress p;
    p.phase = static_cast<VerifyPhase>(
        phase_.load(std::memory_order_relaxed));
    p.rung = rung_.load(std::memory_order_relaxed);
    p.states = states_.load(std::memory_order_relaxed);
    p.frontier = frontier_.load(std::memory_order_relaxed);
    p.states_per_second =
        states_per_second_.load(std::memory_order_relaxed);
    p.states_cap_pct = states_cap_pct_.load(std::memory_order_relaxed);
    p.pairs = pairs_.load(std::memory_order_relaxed);
    p.round = round_.load(std::memory_order_relaxed);
    p.alive = alive_.load(std::memory_order_relaxed);
    p.deadline_remaining_s =
        deadline_remaining_s_.load(std::memory_order_relaxed);
    p.parks = parks_.load(std::memory_order_relaxed);
    p.resumes = resumes_.load(std::memory_order_relaxed);
    p.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
    p.samples = samples_.load(std::memory_order_relaxed);
    return p;
}

json::Value
VerifyProgress::toJson() const
{
    // Keys emitted in sorted order: this object lands in gate diffs
    // and golden tests, which must not be order-fragile.
    json::Value out{json::Object{}};
    out.set("alive", alive);
    out.set("deadline_remaining_s", deadline_remaining_s);
    out.set("frontier", frontier);
    out.set("pairs", pairs);
    out.set("parks", parks);
    out.set("peak_bytes", peak_bytes);
    out.set("phase", toString(phase));
    out.set("resumes", resumes);
    out.set("round", round);
    out.set("rung", rung);
    out.set("samples", samples);
    out.set("states", states);
    out.set("states_cap_pct", states_cap_pct);
    out.set("states_per_second", states_per_second);
    return out;
}

}  // namespace graphiti::obs
