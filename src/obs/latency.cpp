#include "obs/latency.hpp"

#include <algorithm>
#include <cmath>

namespace graphiti::obs {

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
    window_.reserve(capacity_);
}

void
LatencyReservoir::record(double ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (window_.size() < capacity_) {
        window_.push_back(ms);
    } else {
        window_[next_] = ms;
        next_ = (next_ + 1) % capacity_;
    }
    count_ += 1;
    sum_ += ms;
    max_ = std::max(max_, ms);
}

std::size_t
LatencyReservoir::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
LatencyReservoir::percentile(double p) const
{
    std::vector<double> sorted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sorted = window_;
    }
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank: the smallest sample with at least p% of the
    // window at or below it.
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    if (rank > 0)
        rank -= 1;
    return sorted[std::min(rank, sorted.size() - 1)];
}

double
LatencyReservoir::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
LatencyReservoir::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

json::Value
LatencyReservoir::toJson() const
{
    json::Value out{json::Object{}};
    out.set("count", count());
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.set("window", window_.size());
    }
    out.set("p50", percentile(50));
    out.set("p90", percentile(90));
    out.set("p99", percentile(99));
    out.set("max", max());
    out.set("mean", mean());
    return out;
}

}  // namespace graphiti::obs
