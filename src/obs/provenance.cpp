#include "obs/provenance.hpp"

#include <algorithm>

namespace graphiti::obs {

const char*
toString(TagEventKind kind)
{
    switch (kind) {
    case TagEventKind::Alloc: return "alloc";
    case TagEventKind::Return: return "return";
    case TagEventKind::Commit: return "commit";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// ProvenanceLog

const ProvFiring*
ProvenanceLog::firing(std::uint64_t seq) const
{
    if (seq < first_firing)
        return nullptr;
    const std::uint64_t off = seq - first_firing;
    if (off >= firings.size())
        return nullptr;
    return &firings[off];
}

const ProvBirth*
ProvenanceLog::birth(std::uint64_t seq) const
{
    if (seq >= births.size())
        return nullptr;
    return &births[seq];
}

namespace {

json::Value
hopToJson(const ProvHop& hop)
{
    json::Value v;
    v.set("channel", hop.channel);
    v.set("enq_cycle", static_cast<std::int64_t>(hop.enq_cycle));
    v.set("wait", static_cast<std::int64_t>(hop.wait));
    v.set("bp_cycles", static_cast<std::int64_t>(hop.bp_cycles));
    v.set("starve_cycles", static_cast<std::int64_t>(hop.starve_cycles));
    v.set("src", static_cast<std::int64_t>(hop.src));
    return v;
}

json::Value
firingToJson(const ProvFiring& firing)
{
    json::Value v;
    v.set("seq", static_cast<std::int64_t>(firing.seq));
    v.set("node", static_cast<std::int64_t>(firing.node));
    v.set("cycle", static_cast<std::int64_t>(firing.cycle));
    v.set("emit_cycle", static_cast<std::int64_t>(firing.emit_cycle));
    v.set("svc_latency", static_cast<std::int64_t>(firing.svc_latency));
    if (firing.tag_hold)
        v.set("tag_hold", true);
    json::Value hops{json::Array{}};
    for (const ProvHop& hop : firing.consumed)
        hops.push(hopToJson(hop));
    v.set("consumed", std::move(hops));
    return v;
}

}  // namespace

json::Value
ProvenanceLog::toJson() const
{
    json::Value v;

    json::Value node_arr{json::Array{}};
    for (const NodeInfo& node : nodes) {
        json::Value n;
        n.set("name", node.name);
        n.set("type", node.type);
        n.set("latency", node.latency);
        json::Value ins{json::Array{}};
        json::Value outs{json::Array{}};
        for (int ch : node.ins)
            ins.push(ch);
        for (int ch : node.outs)
            outs.push(ch);
        n.set("ins", std::move(ins));
        n.set("outs", std::move(outs));
        node_arr.push(std::move(n));
    }
    v.set("nodes", std::move(node_arr));

    json::Value chan_arr{json::Array{}};
    for (std::size_t i = 0; i < channels.size(); ++i) {
        json::Value c;
        c.set("channel", static_cast<std::int64_t>(i));
        c.set("desc", channels[i].desc);
        c.set("capacity", channels[i].capacity);
        if (i < stats.size()) {
            const ChannelStats& s = stats[i];
            c.set("max_occupancy", s.max_occupancy);
            c.set("occupancy_integral",
                  static_cast<std::int64_t>(s.occupancy_integral));
            c.set("pushes", static_cast<std::int64_t>(s.pushes));
            c.set("pops", static_cast<std::int64_t>(s.pops));
            json::Value series{json::Array{}};
            for (const auto& [cycle, occ] : s.series) {
                json::Value point{json::Array{}};
                point.push(static_cast<std::int64_t>(cycle));
                point.push(static_cast<std::int64_t>(occ));
                series.push(std::move(point));
            }
            c.set("series", std::move(series));
            if (s.series_truncated)
                c.set("series_truncated", true);
        }
        chan_arr.push(std::move(c));
    }
    v.set("channels", std::move(chan_arr));

    json::Value birth_arr{json::Array{}};
    for (const ProvBirth& b : births) {
        json::Value e;
        e.set("seq", static_cast<std::int64_t>(b.seq));
        e.set("channel", b.channel);
        e.set("port", b.port);
        if (b.port < 0)
            e.set("node", static_cast<std::int64_t>(b.node));
        e.set("ordinal", static_cast<std::int64_t>(b.ordinal));
        e.set("cycle", static_cast<std::int64_t>(b.cycle));
        birth_arr.push(std::move(e));
    }
    v.set("births", std::move(birth_arr));
    v.set("dropped_births", static_cast<std::int64_t>(dropped_births));

    json::Value firing_arr{json::Array{}};
    for (const ProvFiring& firing : firings)
        firing_arr.push(firingToJson(firing));
    v.set("firings", std::move(firing_arr));
    v.set("first_firing", static_cast<std::int64_t>(first_firing));
    v.set("dropped_firings", static_cast<std::int64_t>(dropped_firings));

    json::Value comp_arr{json::Array{}};
    for (const ProvCompletion& c : completions) {
        json::Value e;
        e.set("port", c.port);
        e.set("channel", c.channel);
        e.set("ordinal", static_cast<std::int64_t>(c.ordinal));
        e.set("cycle", static_cast<std::int64_t>(c.cycle));
        e.set("hop", hopToJson(c.hop));
        comp_arr.push(std::move(e));
    }
    v.set("completions", std::move(comp_arr));

    json::Value tag_arr{json::Array{}};
    for (const ProvTagEvent& t : tag_events) {
        json::Value e;
        e.set("kind", std::string(toString(t.kind)));
        e.set("node", static_cast<std::int64_t>(t.node));
        e.set("cycle", static_cast<std::int64_t>(t.cycle));
        e.set("alloc_index", static_cast<std::int64_t>(t.alloc_index));
        if (t.kind == TagEventKind::Return)
            e.set("reorder_distance",
                  static_cast<std::int64_t>(t.reorder_distance));
        tag_arr.push(std::move(e));
    }
    v.set("tag_events", std::move(tag_arr));
    v.set("dropped_tag_events",
          static_cast<std::int64_t>(dropped_tag_events));

    v.set("cycles", static_cast<std::int64_t>(cycles));
    return v;
}

json::Value
ProvenanceLog::tailJson(std::size_t max_firings) const
{
    json::Value v;
    v.set("total_firings", static_cast<std::int64_t>(totalFirings()));
    v.set("dropped_firings", static_cast<std::int64_t>(dropped_firings));
    v.set("births", births.size());
    v.set("completions", completions.size());
    v.set("tag_events", tag_events.size());
    v.set("cycles", static_cast<std::int64_t>(cycles));

    const std::size_t keep = std::min(max_firings, firings.size());
    json::Value tail{json::Array{}};
    for (std::size_t i = firings.size() - keep; i < firings.size(); ++i) {
        const ProvFiring& firing = firings[i];
        json::Value e = firingToJson(firing);
        if (firing.node < nodes.size())
            e.set("node_name", nodes[firing.node].name);
        tail.push(std::move(e));
    }
    v.set("tail", std::move(tail));
    return v;
}

// ---------------------------------------------------------------------------
// ProvenanceTracker

ProvenanceTracker::ProvenanceTracker(ProvenanceConfig config)
    : config_(config)
{
}

void
ProvenanceTracker::beginRun(std::vector<ProvenanceLog::NodeInfo> nodes,
                            std::vector<ProvenanceLog::ChannelInfo> channels)
{
    log_ = ProvenanceLog{};
    log_.nodes = std::move(nodes);
    log_.channels = std::move(channels);
    log_.stats.assign(log_.channels.size(), {});

    mirror_.assign(log_.channels.size(), {});
    pipeline_.assign(log_.nodes.size(), {});
    tag_hold_.clear();
    occupancy_.assign(log_.channels.size(), 0);
    occupancy_cycle_.assign(log_.channels.size(), 0);
    birth_ordinal_.clear();
    spawn_ordinal_.assign(log_.nodes.size(), 0);
    output_ordinal_.clear();
    next_birth_ = 0;
    max_cycle_ = 0;
}

void
ProvenanceTracker::touchOccupancy(int channel, std::uint64_t cycle,
                                  int delta)
{
    auto ch = static_cast<std::size_t>(channel);
    if (ch >= occupancy_.size())
        return;
    ProvenanceLog::ChannelStats& stats = log_.stats[ch];

    // Close the integral over [last-change, cycle) at the old level.
    if (cycle > occupancy_cycle_[ch])
        stats.occupancy_integral +=
            static_cast<std::uint64_t>(occupancy_[ch]) *
            (cycle - occupancy_cycle_[ch]);
    occupancy_cycle_[ch] = cycle;

    occupancy_[ch] = static_cast<std::uint32_t>(
        static_cast<int>(occupancy_[ch]) + delta);
    stats.max_occupancy =
        std::max<std::size_t>(stats.max_occupancy, occupancy_[ch]);
    if (delta > 0)
        ++stats.pushes;
    else if (delta < 0)
        ++stats.pops;

    if (!stats.series.empty() && stats.series.back().first == cycle) {
        stats.series.back().second = occupancy_[ch];
    } else if (stats.series.size() < config_.max_series_points) {
        stats.series.emplace_back(cycle, occupancy_[ch]);
    } else {
        stats.series_truncated = true;
    }
    max_cycle_ = std::max(max_cycle_, cycle);
}

void
ProvenanceTracker::pushEntry(int channel, ProvSource src,
                             std::uint64_t cycle)
{
    if (channel < 0 ||
        static_cast<std::size_t>(channel) >= mirror_.size())
        return;  // dangling output: the simulator drops the token
    Entry entry;
    entry.src = src;
    entry.enq_cycle = cycle;
    mirror_[static_cast<std::size_t>(channel)].push_back(entry);
    touchOccupancy(channel, cycle, +1);
}

ProvHop
ProvenanceTracker::popHop(int channel, std::uint64_t cycle)
{
    ProvHop hop;
    hop.channel = channel;
    if (channel < 0 ||
        static_cast<std::size_t>(channel) >= mirror_.size())
        return hop;
    std::deque<Entry>& queue =
        mirror_[static_cast<std::size_t>(channel)];
    if (queue.empty()) {
        // Mirror drift (should not happen): keep going with an
        // unknown source rather than corrupting neighbours.
        hop.enq_cycle = cycle;
        return hop;
    }
    const Entry entry = queue.front();
    queue.pop_front();
    hop.enq_cycle = entry.enq_cycle;
    hop.wait = static_cast<std::uint32_t>(cycle - entry.enq_cycle);
    hop.bp_cycles = entry.bp;
    hop.starve_cycles = entry.starve;
    hop.src = entry.src;
    touchOccupancy(channel, cycle, -1);
    return hop;
}

std::uint64_t
ProvenanceTracker::recordFiring(std::uint32_t node, std::uint64_t cycle,
                                std::uint32_t svc_latency, bool tag_hold,
                                const int* ins, std::size_t nins)
{
    ProvFiring firing;
    firing.seq = log_.totalFirings();
    firing.node = node;
    firing.cycle = cycle;
    firing.emit_cycle = cycle;
    firing.svc_latency = svc_latency;
    firing.tag_hold = tag_hold;
    firing.consumed.reserve(nins);
    for (std::size_t i = 0; i < nins; ++i)
        if (ins[i] >= 0)
            firing.consumed.push_back(popHop(ins[i], cycle));

    if (log_.firings.size() >= config_.max_firings) {
        log_.firings.pop_front();
        ++log_.first_firing;
        ++log_.dropped_firings;
    }
    log_.firings.push_back(std::move(firing));
    max_cycle_ = std::max(max_cycle_, cycle);
    return log_.firings.back().seq;
}

ProvFiring*
ProvenanceTracker::mutableFiring(std::uint64_t seq)
{
    if (seq < log_.first_firing)
        return nullptr;
    const std::uint64_t off = seq - log_.first_firing;
    if (off >= log_.firings.size())
        return nullptr;
    return &log_.firings[off];
}

void
ProvenanceTracker::onBirth(int channel, int port, std::uint64_t cycle)
{
    if (port >= 0 &&
        static_cast<std::size_t>(port) >= birth_ordinal_.size())
        birth_ordinal_.resize(static_cast<std::size_t>(port) + 1, 0);

    if (log_.births.size() >= config_.max_births) {
        ++log_.dropped_births;
        if (port >= 0)
            ++birth_ordinal_[static_cast<std::size_t>(port)];
        pushEntry(channel, kProvUnknown, cycle);
        return;
    }
    ProvBirth birth;
    birth.seq = next_birth_++;
    birth.channel = channel;
    birth.port = port;
    birth.ordinal =
        port >= 0 ? birth_ordinal_[static_cast<std::size_t>(port)]++ : 0;
    birth.cycle = cycle;
    log_.births.push_back(birth);
    pushEntry(channel, provBirthSource(birth.seq), cycle);
}

void
ProvenanceTracker::onSpawn(std::uint32_t node, int channel,
                           std::uint64_t cycle)
{
    if (log_.births.size() >= config_.max_births) {
        ++log_.dropped_births;
        pushEntry(channel, kProvUnknown, cycle);
        return;
    }
    ProvBirth birth;
    birth.seq = next_birth_++;
    birth.channel = channel;
    birth.port = -1;
    birth.node = node;
    birth.ordinal =
        node < spawn_ordinal_.size() ? spawn_ordinal_[node]++ : 0;
    birth.cycle = cycle;
    log_.births.push_back(birth);
    pushEntry(channel, provBirthSource(birth.seq), cycle);
}

void
ProvenanceTracker::onFire(std::uint32_t node, std::uint64_t cycle,
                          const int* ins, std::size_t nins,
                          const int* outs, std::size_t nouts)
{
    const std::uint64_t seq =
        recordFiring(node, cycle, 0, false, ins, nins);
    for (std::size_t i = 0; i < nouts; ++i)
        if (outs[i] >= 0)
            pushEntry(outs[i], static_cast<ProvSource>(seq), cycle);
}

void
ProvenanceTracker::onAccept(std::uint32_t node, std::uint64_t cycle,
                            const int* ins, std::size_t nins,
                            std::uint32_t latency)
{
    const std::uint64_t seq =
        recordFiring(node, cycle, latency, false, ins, nins);
    if (node < pipeline_.size())
        pipeline_[node].push_back(seq);
}

void
ProvenanceTracker::onEmit(std::uint32_t node, int out_channel,
                          std::uint64_t cycle)
{
    if (node >= pipeline_.size() || pipeline_[node].empty())
        return;
    const std::uint64_t seq = pipeline_[node].front();
    pipeline_[node].pop_front();
    if (ProvFiring* firing = mutableFiring(seq))
        firing->emit_cycle = cycle;
    pushEntry(out_channel, static_cast<ProvSource>(seq), cycle);
}

void
ProvenanceTracker::onTagAlloc(std::uint32_t node, std::uint64_t cycle,
                              int in, int out,
                              std::uint64_t alloc_index)
{
    const std::uint64_t seq =
        recordFiring(node, cycle, 0, false, &in, 1);
    pushEntry(out, static_cast<ProvSource>(seq), cycle);
    if (log_.tag_events.size() < config_.max_tag_events)
        log_.tag_events.push_back(
            {TagEventKind::Alloc, node, cycle, alloc_index, 0});
    else
        ++log_.dropped_tag_events;
}

void
ProvenanceTracker::onTagReturn(std::uint32_t node, std::uint64_t cycle,
                               int in, std::uint64_t alloc_index,
                               std::uint32_t reorder_distance)
{
    const std::uint64_t seq =
        recordFiring(node, cycle, 0, true, &in, 1);
    tag_hold_[alloc_index] = seq;
    if (log_.tag_events.size() < config_.max_tag_events)
        log_.tag_events.push_back({TagEventKind::Return, node, cycle,
                                   alloc_index, reorder_distance});
    else
        ++log_.dropped_tag_events;
}

void
ProvenanceTracker::onTagCommit(std::uint32_t node, std::uint64_t cycle,
                               int out, std::uint64_t alloc_index)
{
    auto held = tag_hold_.find(alloc_index);
    if (held == tag_hold_.end()) {
        // The returning firing was never seen (mirror drift); emit an
        // unknown-source token so downstream lineage stays aligned.
        pushEntry(out, kProvUnknown, cycle);
    } else {
        const std::uint64_t seq = held->second;
        tag_hold_.erase(held);
        if (ProvFiring* firing = mutableFiring(seq))
            firing->emit_cycle = cycle;
        pushEntry(out, static_cast<ProvSource>(seq), cycle);
    }
    if (log_.tag_events.size() < config_.max_tag_events)
        log_.tag_events.push_back(
            {TagEventKind::Commit, node, cycle, alloc_index, 0});
    else
        ++log_.dropped_tag_events;
}

void
ProvenanceTracker::onOutput(int port, int channel, std::uint64_t cycle)
{
    if (port >= 0 &&
        static_cast<std::size_t>(port) >= output_ordinal_.size())
        output_ordinal_.resize(static_cast<std::size_t>(port) + 1, 0);
    ProvCompletion completion;
    completion.port = port;
    completion.channel = channel;
    completion.ordinal =
        port >= 0 ? output_ordinal_[static_cast<std::size_t>(port)]++
                  : 0;
    completion.cycle = cycle;
    completion.hop = popHop(channel, cycle);
    log_.completions.push_back(completion);
    max_cycle_ = std::max(max_cycle_, cycle);
}

void
ProvenanceTracker::onNodeBlocked(std::uint32_t node, std::uint64_t cycle,
                                 bool starved, bool backpressured)
{
    if (node >= log_.nodes.size() || (!starved && !backpressured))
        return;
    for (int ch : log_.nodes[node].ins) {
        if (ch < 0 ||
            static_cast<std::size_t>(ch) >= mirror_.size())
            continue;
        std::deque<Entry>& queue =
            mirror_[static_cast<std::size_t>(ch)];
        if (queue.empty())
            continue;
        Entry& head = queue.front();
        // Tokens staged this very cycle are not yet visible to the
        // consumer; counting them would overrun the wait budget.
        if (head.enq_cycle >= cycle)
            continue;
        if (starved)
            ++head.starve;
        else
            ++head.bp;
    }
}

void
ProvenanceTracker::endRun(std::uint64_t cycles)
{
    max_cycle_ = std::max(max_cycle_, cycles);
    for (std::size_t ch = 0; ch < occupancy_.size(); ++ch) {
        if (max_cycle_ > occupancy_cycle_[ch])
            log_.stats[ch].occupancy_integral +=
                static_cast<std::uint64_t>(occupancy_[ch]) *
                (max_cycle_ - occupancy_cycle_[ch]);
        occupancy_cycle_[ch] = max_cycle_;
    }
    log_.cycles = cycles;
}

}  // namespace graphiti::obs
