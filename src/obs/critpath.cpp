#include "obs/critpath.hpp"

#include <algorithm>
#include <cstdlib>

namespace graphiti::obs {

json::Value
CycleAttribution::toJson() const
{
    json::Value v;
    v.set("compute", static_cast<std::int64_t>(compute));
    v.set("queue_wait", static_cast<std::int64_t>(queue_wait));
    v.set("backpressure", static_cast<std::int64_t>(backpressure));
    v.set("total", static_cast<std::int64_t>(total()));
    return v;
}

void
Histogram::add(std::uint64_t value)
{
    ++buckets[value];
    if (count == 0) {
        min = value;
        max = value;
    } else {
        min = std::min(min, value);
        max = std::max(max, value);
    }
    ++count;
    sum += value;
}

bool
Histogram::degenerate() const
{
    return count == 0 || (buckets.size() == 1 &&
                          buckets.begin()->first == 0);
}

json::Value
Histogram::toJson() const
{
    json::Value v;
    v.set("count", static_cast<std::int64_t>(count));
    v.set("sum", static_cast<std::int64_t>(sum));
    v.set("min", static_cast<std::int64_t>(min));
    v.set("max", static_cast<std::int64_t>(max));
    v.set("mean", count > 0 ? static_cast<double>(sum) /
                                  static_cast<double>(count)
                            : 0.0);
    v.set("degenerate", degenerate());
    json::Value b;
    for (const auto& [value, n] : buckets)
        b.set(std::to_string(value), static_cast<std::int64_t>(n));
    if (buckets.empty())
        b = json::Value(json::Object{});
    v.set("buckets", std::move(b));
    return v;
}

namespace {

/**
 * Split one channel hop into the three buckets so the parts sum to
 * exactly hop.wait, clamping defensively if counters ever drifted.
 */
void
attributeHop(const ProvHop& hop, CycleAttribution& out)
{
    const std::uint64_t w = hop.wait;
    const std::uint64_t transfer = std::min<std::uint64_t>(w, 1);
    const std::uint64_t bp =
        std::min<std::uint64_t>(hop.bp_cycles, w - transfer);
    out.compute += transfer;
    out.backpressure += bp;
    out.queue_wait += w - transfer - bp;
}

/** Split a firing's emit gap; the parts sum to exactly the gap. */
void
attributeGap(const ProvFiring& firing, CycleAttribution& out)
{
    const std::uint64_t gap = firing.emit_cycle - firing.cycle;
    if (firing.tag_hold) {
        out.queue_wait += gap;  // program-order (reorder) hold
        return;
    }
    const std::uint64_t svc =
        std::min<std::uint64_t>(gap, firing.svc_latency);
    out.compute += svc;
    out.backpressure += gap - svc;  // completion-buffer stall
}

const ProvHop*
lastArrivalHop(const ProvFiring& firing)
{
    const ProvHop* best = nullptr;
    for (const ProvHop& hop : firing.consumed)
        if (best == nullptr || hop.enq_cycle > best->enq_cycle)
            best = &hop;
    return best;
}

}  // namespace

CritPathReport
analyzeCriticalPaths(const ProvenanceLog& log,
                     const CritPathOptions& options)
{
    CritPathReport report;
    report.cycles = log.cycles;
    report.max_tokens_json = options.max_tokens;

    // Channel aggregates over every hop in the (windowed) log.
    report.channels.resize(log.channels.size());
    for (std::size_t i = 0; i < log.channels.size(); ++i) {
        ChannelProfile& profile = report.channels[i];
        profile.channel = static_cast<int>(i);
        profile.desc = log.channels[i].desc;
        if (i < log.stats.size()) {
            profile.max_occupancy = log.stats[i].max_occupancy;
            if (log.cycles > 0)
                profile.avg_occupancy =
                    static_cast<double>(log.stats[i].occupancy_integral) /
                    static_cast<double>(log.cycles);
        }
    }
    auto aggregate = [&](const ProvHop& hop) {
        if (hop.channel < 0 ||
            static_cast<std::size_t>(hop.channel) >=
                report.channels.size())
            return;
        ChannelProfile& profile =
            report.channels[static_cast<std::size_t>(hop.channel)];
        ++profile.hops;
        profile.wait_cycles += hop.wait;
        profile.bp_cycles += hop.bp_cycles;
        profile.starve_cycles += hop.starve_cycles;
    };
    for (const ProvFiring& firing : log.firings)
        for (const ProvHop& hop : firing.consumed)
            aggregate(hop);
    for (const ProvCompletion& completion : log.completions)
        aggregate(completion.hop);

    auto creditCritical = [&](const ProvHop& hop) {
        if (hop.channel < 0 ||
            static_cast<std::size_t>(hop.channel) >=
                report.channels.size())
            return;
        ChannelProfile& profile =
            report.channels[static_cast<std::size_t>(hop.channel)];
        ++profile.critical_hops;
        profile.critical_wait_cycles += hop.wait;
    };

    // Per-token walks.
    const std::uint64_t step_limit = log.totalFirings() + 1;
    for (const ProvCompletion& completion : log.completions) {
        TokenProfile token;
        token.port = completion.port;
        token.ordinal = completion.ordinal;
        token.completion_cycle = completion.cycle;

        attributeHop(completion.hop, token.attribution);
        creditCritical(completion.hop);
        token.path_length = 1;
        if (options.max_path_steps > 0)
            token.path.push_back({"<output>", completion.hop.channel,
                                  completion.cycle, completion.hop.wait,
                                  completion.hop.bp_cycles,
                                  completion.hop.starve_cycles, 0});

        ProvSource cur = completion.hop.src;
        std::uint64_t steps = 0;
        while (provIsFiring(cur)) {
            if (++steps > step_limit) {
                token.truncated = true;
                break;
            }
            const ProvFiring* firing =
                log.firing(static_cast<std::uint64_t>(cur));
            if (firing == nullptr) {
                token.truncated = true;  // evicted from the ring
                break;
            }
            attributeGap(*firing, token.attribution);
            const ProvHop* hop = lastArrivalHop(*firing);
            if (hop == nullptr) {
                token.truncated = true;
                break;
            }
            attributeHop(*hop, token.attribution);
            creditCritical(*hop);
            ++token.path_length;
            if (token.path.size() < options.max_path_steps) {
                PathStep step;
                step.node = firing->node < log.nodes.size()
                                ? log.nodes[firing->node].name
                                : "?";
                step.channel = hop->channel;
                step.fire_cycle = firing->cycle;
                step.wait = hop->wait;
                step.bp_cycles = hop->bp_cycles;
                step.starve_cycles = hop->starve_cycles;
                step.emit_gap = static_cast<std::uint32_t>(
                    firing->emit_cycle - firing->cycle);
                token.path.push_back(step);
            }
            cur = hop->src;
        }

        if (!token.truncated && provIsBirth(cur)) {
            const ProvBirth* birth = log.birth(provBirthIndex(cur));
            if (birth != nullptr) {
                token.origin_birth =
                    static_cast<std::int64_t>(birth->seq);
                token.birth_cycle = birth->cycle;
                token.latency = completion.cycle - birth->cycle;
                if (birth->port >= 0) {
                    const std::uint64_t displacement =
                        completion.ordinal > birth->ordinal
                            ? completion.ordinal - birth->ordinal
                            : birth->ordinal - completion.ordinal;
                    report.reorder.add(displacement);
                }
            } else {
                token.truncated = true;
            }
        } else if (!token.truncated) {
            token.truncated = true;  // unknown source
        }

        if (token.truncated) {
            ++report.truncated_tokens;
        } else {
            report.totals += token.attribution;
            report.completion_latency.add(token.latency);
        }
        report.tokens.push_back(std::move(token));
    }

    // Tagger reorder distances (the OoO signature).
    for (const ProvTagEvent& event : log.tag_events) {
        if (event.kind != TagEventKind::Return)
            continue;
        ++report.tag_returns;
        report.reorder.add(event.reorder_distance);
    }

    // Bottleneck ranking: who holds tokens on critical paths.
    std::vector<int> ranked;
    for (const ChannelProfile& profile : report.channels)
        if (profile.critical_wait_cycles > 0 || profile.bp_cycles > 0)
            ranked.push_back(profile.channel);
    std::sort(ranked.begin(), ranked.end(), [&](int a, int b) {
        const ChannelProfile& pa =
            report.channels[static_cast<std::size_t>(a)];
        const ChannelProfile& pb =
            report.channels[static_cast<std::size_t>(b)];
        if (pa.critical_wait_cycles != pb.critical_wait_cycles)
            return pa.critical_wait_cycles > pb.critical_wait_cycles;
        if (pa.bp_cycles != pb.bp_cycles)
            return pa.bp_cycles > pb.bp_cycles;
        return a < b;
    });
    if (ranked.size() > 8)
        ranked.resize(8);
    report.bottleneck_channels = std::move(ranked);

    return report;
}

json::Value
CritPathReport::toJson() const
{
    json::Value v;
    v.set("cycles", static_cast<std::int64_t>(cycles));
    v.set("totals", totals.toJson());
    v.set("truncated_tokens",
          static_cast<std::int64_t>(truncated_tokens));
    v.set("tag_returns", static_cast<std::int64_t>(tag_returns));
    v.set("reorder", reorder.toJson());
    v.set("completion_latency", completion_latency.toJson());

    json::Value token_arr{json::Array{}};
    std::size_t rendered = 0;
    for (const TokenProfile& token : tokens) {
        if (rendered >= max_tokens_json)
            break;
        ++rendered;
        json::Value t;
        t.set("port", token.port);
        t.set("ordinal", static_cast<std::int64_t>(token.ordinal));
        t.set("completion_cycle",
              static_cast<std::int64_t>(token.completion_cycle));
        t.set("truncated", token.truncated);
        t.set("origin_birth",
              static_cast<std::int64_t>(token.origin_birth));
        t.set("birth_cycle",
              static_cast<std::int64_t>(token.birth_cycle));
        t.set("latency", static_cast<std::int64_t>(token.latency));
        t.set("attribution", token.attribution.toJson());
        t.set("path_length", token.path_length);
        json::Value path{json::Array{}};
        for (const PathStep& step : token.path) {
            json::Value s;
            s.set("node", step.node);
            s.set("channel", step.channel);
            s.set("fire_cycle",
                  static_cast<std::int64_t>(step.fire_cycle));
            s.set("wait", static_cast<std::int64_t>(step.wait));
            s.set("bp_cycles",
                  static_cast<std::int64_t>(step.bp_cycles));
            s.set("starve_cycles",
                  static_cast<std::int64_t>(step.starve_cycles));
            s.set("emit_gap",
                  static_cast<std::int64_t>(step.emit_gap));
            path.push(std::move(s));
        }
        t.set("path", std::move(path));
        token_arr.push(std::move(t));
    }
    v.set("tokens", std::move(token_arr));

    json::Value chan_arr{json::Array{}};
    for (const ChannelProfile& profile : channels) {
        json::Value c;
        c.set("channel", profile.channel);
        c.set("desc", profile.desc);
        c.set("hops", static_cast<std::int64_t>(profile.hops));
        c.set("wait_cycles",
              static_cast<std::int64_t>(profile.wait_cycles));
        c.set("bp_cycles",
              static_cast<std::int64_t>(profile.bp_cycles));
        c.set("starve_cycles",
              static_cast<std::int64_t>(profile.starve_cycles));
        c.set("critical_hops",
              static_cast<std::int64_t>(profile.critical_hops));
        c.set("critical_wait_cycles",
              static_cast<std::int64_t>(profile.critical_wait_cycles));
        c.set("max_occupancy", profile.max_occupancy);
        c.set("avg_occupancy", profile.avg_occupancy);
        chan_arr.push(std::move(c));
    }
    v.set("channels", std::move(chan_arr));

    json::Value ranked{json::Array{}};
    for (int channel : bottleneck_channels)
        ranked.push(channel);
    v.set("bottleneck_channels", std::move(ranked));
    return v;
}

}  // namespace graphiti::obs
