#ifndef GRAPHITI_OBS_VPROBE_HPP
#define GRAPHITI_OBS_VPROBE_HPP

/**
 * @file
 * Live progress probe of one governed verification
 * (docs/verification_observability.md).
 *
 * A Full-rung exploration can run for minutes; until this probe
 * existed it reported nothing until it finished or degraded. The
 * verification phases — StateSpace expansion, the simulation game,
 * the Governor ladder — publish point-in-time readings here at a
 * bounded cadence (per frontier batch / per fixpoint round, never per
 * state), and readers on *other* threads (the served `jobs` verb, the
 * exposition endpoint) snapshot them without taking any lock.
 *
 * Concurrency contract: the verification phases of one job run
 * sequentially on one worker thread, so there is exactly one writer
 * at a time; every field is an independent relaxed atomic. A reader
 * may therefore observe a snapshot torn *across* fields (states from
 * one batch, frontier from the next) — fine for progress display —
 * but each field is always a value some publish actually wrote, and
 * `samples` counts publishes so pollers can tell fresh from stale.
 *
 * The probe is observation only: nothing in it feeds back into
 * exploration order, game verdicts or ladder decisions, so the
 * byte-identical-at-any-thread-count contract (docs/parallelism.md)
 * is untouched. Call sites in refine/ and guard/ compile to nothing
 * under -DGRAPHITI_OBS=OFF.
 */

#include <atomic>
#include <cstdint>

#include "obs/json.hpp"

namespace graphiti::obs {

/** What a governed verification is doing right now. */
enum class VerifyPhase : std::uint8_t
{
    Idle = 0,        ///< no phase running (job queued / finished)
    Explore,         ///< state-space exploration
    Game,            ///< simulation-game discovery + pruning
    TraceWalks,      ///< randomized trace-inclusion walks
};

const char* toString(VerifyPhase phase);

/** One point-in-time reading of a running verification. */
struct VerifyProgress
{
    VerifyPhase phase = VerifyPhase::Idle;
    /** Which Governor rung is being attempted ("full",
     * "bounded-partial", "trace-inclusion", "" before the ladder). */
    const char* rung = "";
    /** States interned by the current exploration. */
    std::uint64_t states = 0;
    /** Pending frontier depth of the current exploration. */
    std::uint64_t frontier = 0;
    /** Exploration throughput over the last publish interval. */
    double states_per_second = 0.0;
    /** Percent of the exploration's max_states cap consumed. */
    double states_cap_pct = 0.0;
    /** Reachable pairs discovered by the game so far. */
    std::uint64_t pairs = 0;
    /** Fixpoint round the game is pruning. */
    std::uint64_t round = 0;
    /** Alive-set size after the last completed round. */
    std::uint64_t alive = 0;
    /** Wall-clock headroom; negative when no deadline governs. */
    double deadline_remaining_s = -1.0;
    /** Explorations parked (cap/stop) and resumed over the job. */
    std::uint64_t parks = 0;
    std::uint64_t resumes = 0;
    /** High-water byte estimate across phases (see peakBytes()). */
    std::uint64_t peak_bytes = 0;
    /** Publishes ever made; 0 means the probe never fired. */
    std::uint64_t samples = 0;

    /** Sorted-key object (stable for gate diffs and golden tests). */
    json::Value toJson() const;
};

/**
 * The lock-free publisher. One writer (the verifying thread), any
 * number of snapshot readers.
 */
class VerifyProbe
{
  public:
    /** Enter @p phase under rung @p rung (a static string; the probe
     * stores the pointer, never copies). Resets per-phase gauges. */
    void beginPhase(VerifyPhase phase, const char* rung);

    /** Publish one exploration reading. */
    void publishExplore(std::uint64_t states, std::uint64_t frontier,
                        double states_per_second, double cap_pct);

    /** Publish one game reading. */
    void publishGame(std::uint64_t pairs, std::uint64_t round,
                     std::uint64_t alive);

    /** Record a parked (capped/stopped) exploration. */
    void recordPark();
    /** Record an exploration resuming from a parked frontier. */
    void recordResume();

    /** Raise the peak-bytes high-water mark. */
    void notePeakBytes(std::uint64_t bytes);

    /** Publish wall-clock headroom (negative = no deadline). */
    void setDeadlineRemaining(double seconds);

    /** Read the probe from any thread (see file comment on tearing). */
    VerifyProgress snapshot() const;

    std::uint64_t peakBytes() const
    {
        return peak_bytes_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint8_t> phase_{0};
    std::atomic<const char*> rung_{""};
    std::atomic<std::uint64_t> states_{0};
    std::atomic<std::uint64_t> frontier_{0};
    std::atomic<double> states_per_second_{0.0};
    std::atomic<double> states_cap_pct_{0.0};
    std::atomic<std::uint64_t> pairs_{0};
    std::atomic<std::uint64_t> round_{0};
    std::atomic<std::uint64_t> alive_{0};
    std::atomic<double> deadline_remaining_s_{-1.0};
    std::atomic<std::uint64_t> parks_{0};
    std::atomic<std::uint64_t> resumes_{0};
    std::atomic<std::uint64_t> peak_bytes_{0};
    std::atomic<std::uint64_t> samples_{0};
};

}  // namespace graphiti::obs

#endif  // GRAPHITI_OBS_VPROBE_HPP
