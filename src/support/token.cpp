#include "support/token.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace graphiti {

bool
Value::asBool() const
{
    if (const bool* b = std::get_if<bool>(&repr_))
        return *b;
    if (const std::int64_t* i = std::get_if<std::int64_t>(&repr_))
        return *i != 0;
    throw std::runtime_error("Value::asBool on non-boolean: " + toString());
}

std::int64_t
Value::asInt() const
{
    if (const std::int64_t* i = std::get_if<std::int64_t>(&repr_))
        return *i;
    if (const bool* b = std::get_if<bool>(&repr_))
        return *b ? 1 : 0;
    throw std::runtime_error("Value::asInt on non-integer: " + toString());
}

double
Value::asDouble() const
{
    if (const double* d = std::get_if<double>(&repr_))
        return *d;
    throw std::runtime_error("Value::asDouble on non-double: " + toString());
}

const ValueTuple&
Value::asTuple() const
{
    if (const auto* t = std::get_if<std::shared_ptr<ValueTuple>>(&repr_))
        return **t;
    throw std::runtime_error("Value::asTuple on non-tuple: " + toString());
}

double
Value::toDouble() const
{
    if (const double* d = std::get_if<double>(&repr_))
        return *d;
    if (const std::int64_t* i = std::get_if<std::int64_t>(&repr_))
        return static_cast<double>(*i);
    if (const bool* b = std::get_if<bool>(&repr_))
        return *b ? 1.0 : 0.0;
    throw std::runtime_error("Value::toDouble on non-numeric: " + toString());
}

bool
Value::operator==(const Value& other) const
{
    if (repr_.index() != other.repr_.index())
        return false;
    if (isTuple())
        return asTuple() == other.asTuple();
    return repr_ == other.repr_;
}

std::string
Value::toString() const
{
    std::ostringstream os;
    if (isUnit()) {
        os << "()";
    } else if (isBool()) {
        os << (asBool() ? "true" : "false");
    } else if (isInt()) {
        os << asInt();
    } else if (isDouble()) {
        os << asDouble();
    } else {
        os << "(";
        const ValueTuple& t = asTuple();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (i > 0)
                os << ", ";
            os << t[i].toString();
        }
        os << ")";
    }
    return os.str();
}

namespace {

std::size_t
combineHash(std::size_t seed, std::size_t h)
{
    return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t
Value::hash() const
{
    std::size_t seed = repr_.index();
    if (isUnit())
        return combineHash(seed, 0);
    if (isBool())
        return combineHash(seed, std::hash<bool>{}(asBool()));
    if (isInt())
        return combineHash(seed, std::hash<std::int64_t>{}(asInt()));
    if (isDouble())
        return combineHash(seed, std::hash<double>{}(asDouble()));
    for (const Value& v : asTuple())
        seed = combineHash(seed, v.hash());
    return seed;
}

std::string
Token::toString() const
{
    if (tag)
        return value.toString() + "#" + std::to_string(*tag);
    return value.toString();
}

std::size_t
Token::hash() const
{
    std::size_t seed = value.hash();
    if (tag)
        seed = seed * 31 + (*tag + 1);
    return seed;
}

}  // namespace graphiti
