#include "support/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace graphiti::net {

namespace {

std::string
errnoText(const char* what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Poll one fd for @p events; 1 ready, 0 timeout, error otherwise. */
Result<int>
pollOne(int fd, short events, int timeout_ms)
{
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    for (;;) {
        int n = ::poll(&p, 1, timeout_ms);
        if (n >= 0)
            return n;
        if (errno != EINTR)
            return err(errnoText("poll"));
    }
}

}  // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<Socket>
listenUnix(const std::string& path, int backlog)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path))
        return err("unix socket path too long: " + path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return err(errnoText("socket(AF_UNIX)"));
    Socket sock(fd);
    ::unlink(path.c_str());  // stale socket file from a crashed daemon
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0)
        return err(errnoText(("bind " + path).c_str()));
    if (::listen(fd, backlog) != 0)
        return err(errnoText("listen"));
    return sock;
}

Result<Socket>
listenTcp(std::uint16_t port, int backlog)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return err(errnoText("socket(AF_INET)"));
    Socket sock(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0)
        return err(errnoText("bind tcp"));
    if (::listen(fd, backlog) != 0)
        return err(errnoText("listen"));
    return sock;
}

Result<std::uint16_t>
boundPort(const Socket& listener)
{
    struct sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd(),
                      reinterpret_cast<struct sockaddr*>(&addr),
                      &len) != 0)
        return err(errnoText("getsockname"));
    return ntohs(addr.sin_port);
}

Result<Socket>
connectUnix(const std::string& path)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path))
        return err("unix socket path too long: " + path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return err(errnoText("socket(AF_UNIX)"));
    Socket sock(fd);
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0)
        return err(errnoText(("connect " + path).c_str()));
    return sock;
}

Result<Socket>
connectTcp(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return err(errnoText("socket(AF_INET)"));
    Socket sock(fd);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0)
        return err(errnoText("connect tcp"));
    return sock;
}

Result<Socket>
acceptConnection(const Socket& listener, int timeout_ms)
{
    Result<int> ready = pollOne(listener.fd(), POLLIN, timeout_ms);
    if (!ready.ok())
        return ready.error();
    if (ready.value() == 0)
        return Socket{};  // timeout: let the caller poll its flags
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0)
        return err(errnoText("accept"));
    return Socket(fd);
}

Result<bool>
waitReadable(const Socket& socket, int timeout_ms)
{
    Result<int> ready = pollOne(socket.fd(), POLLIN, timeout_ms);
    if (!ready.ok())
        return ready.error();
    return ready.value() > 0;
}

Result<std::size_t>
readSome(const Socket& socket, std::string& out, std::size_t max,
         int timeout_ms)
{
    Result<int> ready = pollOne(socket.fd(), POLLIN, timeout_ms);
    if (!ready.ok())
        return ready.error();
    if (ready.value() == 0)
        return err("read timeout");
    char buf[4096];
    std::size_t want = std::min(max, sizeof(buf));
    for (;;) {
        ssize_t n = ::recv(socket.fd(), buf, want, 0);
        if (n >= 0) {
            out.append(buf, static_cast<std::size_t>(n));
            return static_cast<std::size_t>(n);
        }
        if (errno != EINTR)
            return err(errnoText("recv"));
    }
}

Result<bool>
writeAll(const Socket& socket, const std::string& data, int timeout_ms)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        Result<int> ready =
            pollOne(socket.fd(), POLLOUT, timeout_ms);
        if (!ready.ok())
            return ready.error();
        if (ready.value() == 0)
            return err("write timeout");
        ssize_t n = ::send(socket.fd(), data.data() + sent,
                           data.size() - sent, MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno != EINTR)
            return err(errnoText("send"));
    }
    return true;
}

bool
peerClosed(const Socket& socket)
{
    char probe;
    ssize_t n = ::recv(socket.fd(), &probe, 1,
                       MSG_PEEK | MSG_DONTWAIT);
    if (n == 0)
        return true;  // orderly shutdown
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR))
        return false;
    return n < 0;  // ECONNRESET and friends
}

}  // namespace graphiti::net
