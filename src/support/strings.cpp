#include "support/strings.hpp"

#include <cctype>

namespace graphiti {

std::vector<std::string>
split(std::string_view input, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= input.size(); ++i) {
        if (i == input.size() || input[i] == sep) {
            out.emplace_back(input.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
trim(std::string_view input)
{
    std::size_t begin = 0;
    std::size_t end = input.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(input[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(input[end - 1])))
        --end;
    return std::string(input.substr(begin, end - begin));
}

bool
startsWith(std::string_view input, std::string_view prefix)
{
    return input.size() >= prefix.size() &&
           input.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

}  // namespace graphiti
