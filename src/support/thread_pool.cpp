#include "support/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace graphiti {

namespace {

/** Set while a lane executes batch work, so nested parallelFor calls
 * run inline instead of deadlocking on their own pool. */
thread_local bool tl_inside_pool_task = false;

/** One contiguous index range of a batch. */
struct Chunk
{
    std::size_t begin;
    std::size_t end;
};

}  // namespace

struct ThreadPool::Impl
{
    struct Lane
    {
        std::mutex m;
        std::deque<Chunk> q;
        /** Occupancy counters; relaxed, touched per chunk at most. */
        std::atomic<std::uint64_t> chunks{0};
        std::atomic<std::uint64_t> steals{0};
        std::atomic<std::uint64_t> idle_ns{0};
    };

    explicit Impl(std::size_t lanes) : lanes_(lanes)
    {
        for (std::size_t i = 0; i < lanes; ++i)
            lane_.push_back(std::make_unique<Lane>());
        // Lane 0 is the caller; spawn the rest.
        for (std::size_t i = 1; i < lanes; ++i)
            workers_.emplace_back([this, i] { workerMain(i); });
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lock(batch_m_);
            shutdown_ = true;
        }
        batch_cv_.notify_all();
        for (std::thread& t : workers_)
            t.join();
    }

    /** Pop a chunk: own front first, then steal a sibling's back. */
    bool
    take(std::size_t lane, Chunk& out)
    {
        {
            Lane& own = *lane_[lane];
            std::lock_guard<std::mutex> lock(own.m);
            if (!own.q.empty()) {
                out = own.q.front();
                own.q.pop_front();
                return true;
            }
        }
        for (std::size_t d = 1; d < lanes_; ++d) {
            Lane& victim = *lane_[(lane + d) % lanes_];
            std::lock_guard<std::mutex> lock(victim.m);
            if (!victim.q.empty()) {
                out = victim.q.back();
                victim.q.pop_back();
                lane_[lane]->steals.fetch_add(
                    1, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    /** Drain the current batch from lane @p lane until no chunk can
     * be taken anywhere. */
    void
    drain(std::size_t lane)
    {
        Chunk chunk;
        while (take(lane, chunk)) {
            tl_inside_pool_task = true;
            chunk_fn_(chunk.begin, chunk.end);
            tl_inside_pool_task = false;
            lane_[lane]->chunks.fetch_add(1,
                                          std::memory_order_relaxed);
            std::size_t left =
                remaining_.fetch_sub(1, std::memory_order_acq_rel) - 1;
            if (left == 0) {
                std::lock_guard<std::mutex> lock(batch_m_);
                batch_cv_.notify_all();
            }
        }
    }

    void
    workerMain(std::size_t lane)
    {
        std::uint64_t seen_epoch = 0;
        for (;;) {
            {
                auto wait_start = std::chrono::steady_clock::now();
                std::unique_lock<std::mutex> lock(batch_m_);
                batch_cv_.wait(lock, [&] {
                    return shutdown_ || epoch_ != seen_epoch;
                });
                lane_[lane]->idle_ns.fetch_add(
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() -
                            wait_start)
                            .count()),
                    std::memory_order_relaxed);
                if (shutdown_)
                    return;
                seen_epoch = epoch_;
            }
            drain(lane);
        }
    }

    void
    run(std::size_t n,
        const std::function<void(std::size_t, std::size_t)>& fn)
    {
        // Split into more chunks than lanes so stealing has something
        // to steal when chunk costs are skewed.
        std::size_t chunks = std::min(n, lanes_ * 4);
        std::size_t per = n / chunks;
        std::size_t extra = n % chunks;
        submitted_.fetch_add(chunks, std::memory_order_relaxed);
        batches_.fetch_add(1, std::memory_order_relaxed);
        chunk_fn_ = fn;
        remaining_.store(chunks, std::memory_order_release);
        std::size_t at = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
            std::size_t len = per + (c < extra ? 1 : 0);
            Lane& lane = *lane_[c % lanes_];
            std::lock_guard<std::mutex> lock(lane.m);
            lane.q.push_back(Chunk{at, at + len});
            at += len;
        }
        {
            std::lock_guard<std::mutex> lock(batch_m_);
            ++epoch_;
        }
        batch_cv_.notify_all();

        drain(0);  // the caller participates as lane 0
        auto wait_start = std::chrono::steady_clock::now();
        std::unique_lock<std::mutex> lock(batch_m_);
        batch_cv_.wait(lock, [&] {
            return remaining_.load(std::memory_order_acquire) == 0;
        });
        lane_[0]->idle_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - wait_start)
                    .count()),
            std::memory_order_relaxed);
        chunk_fn_ = nullptr;
    }

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::size_t lanes_;
    std::vector<std::unique_ptr<Lane>> lane_;
    std::vector<std::thread> workers_;
    std::function<void(std::size_t, std::size_t)> chunk_fn_;
    std::atomic<std::size_t> remaining_{0};
    std::mutex batch_m_;
    std::condition_variable batch_cv_;
    std::uint64_t epoch_ = 0;
    bool shutdown_ = false;
};

ThreadPool::ThreadPool(std::size_t threads)
{
    size_ = resolveThreads(threads);
    if (size_ > 1)
        impl_ = new Impl(size_);
}

ThreadPool::~ThreadPool()
{
    delete impl_;
}

std::size_t
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

std::size_t
ThreadPool::resolveThreads(std::size_t requested)
{
    return requested == 0 ? hardwareThreads() : requested;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    parallelForChunks(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
    });
}

void
ThreadPool::parallelForChunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn)
{
    if (n == 0)
        return;
    if (impl_ == nullptr || n < 2 || tl_inside_pool_task) {
        fn(0, n);
        inline_chunks_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    impl_->run(n, fn);
}

ThreadPool::PoolStats
ThreadPool::stats() const
{
    PoolStats out;
    out.lanes.resize(size_);
    std::uint64_t inl =
        inline_chunks_.load(std::memory_order_relaxed);
    // Inline runs happen on the calling thread: attribute to lane 0,
    // one single-chunk batch each.
    out.lanes[0].chunks = inl;
    out.chunks_submitted = inl;
    out.batches = inl;
    if (impl_ != nullptr) {
        for (std::size_t i = 0; i < size_; ++i) {
            const Impl::Lane& lane = *impl_->lane_[i];
            out.lanes[i].chunks +=
                lane.chunks.load(std::memory_order_relaxed);
            out.lanes[i].steals +=
                lane.steals.load(std::memory_order_relaxed);
            out.lanes[i].idle_ns +=
                lane.idle_ns.load(std::memory_order_relaxed);
        }
        out.chunks_submitted +=
            impl_->submitted_.load(std::memory_order_relaxed);
        out.batches +=
            impl_->batches_.load(std::memory_order_relaxed);
    }
    return out;
}

}  // namespace graphiti
