#ifndef GRAPHITI_SUPPORT_TOKEN_HPP
#define GRAPHITI_SUPPORT_TOKEN_HPP

/**
 * @file
 * Token values flowing through dataflow circuits.
 *
 * Dataflow circuits exchange *tokens*: a data payload plus, inside a
 * Tagger/Untagger region, a small reorder tag. The payload is one of a
 * small set of scalar types (the types Dynamatic circuits use), or a
 * tuple of payloads (produced by Join, consumed by Split).
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace graphiti {

/** Reorder tag used inside Tagger/Untagger regions. */
using Tag = std::uint32_t;

class Value;

/** Heap-allocated tuple payload (Join output / Split input). */
using ValueTuple = std::vector<Value>;

/**
 * A single data payload: unit (control-only token), boolean, 64-bit
 * integer, double, or a tuple of payloads.
 *
 * Tuples appear when Join nodes synchronize several wires into one and
 * when Pure components carry the whole loop state on a single wire.
 */
class Value
{
  public:
    /** Control-only token carrying no data. */
    struct Unit
    {
        bool operator==(const Unit&) const = default;
    };

    Value() : repr_(Unit{}) {}
    explicit Value(bool b) : repr_(b) {}
    explicit Value(std::int64_t i) : repr_(i) {}
    explicit Value(int i) : repr_(static_cast<std::int64_t>(i)) {}
    explicit Value(double d) : repr_(d) {}
    explicit Value(ValueTuple t)
        : repr_(std::make_shared<ValueTuple>(std::move(t)))
    {
    }

    /** Build a two-element tuple (the common Join case). */
    static Value tuple(Value a, Value b)
    {
        ValueTuple t;
        t.push_back(std::move(a));
        t.push_back(std::move(b));
        return Value(std::move(t));
    }

    bool isUnit() const { return std::holds_alternative<Unit>(repr_); }
    bool isBool() const { return std::holds_alternative<bool>(repr_); }
    bool isInt() const { return std::holds_alternative<std::int64_t>(repr_); }
    bool isDouble() const { return std::holds_alternative<double>(repr_); }
    bool isTuple() const
    {
        return std::holds_alternative<std::shared_ptr<ValueTuple>>(repr_);
    }

    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const ValueTuple& asTuple() const;

    /** Numeric coercion used by arithmetic operators. */
    double toDouble() const;

    bool operator==(const Value& other) const;
    bool operator!=(const Value& other) const { return !(*this == other); }

    /** Human-readable rendering, used in traces and counterexamples. */
    std::string toString() const;

    /** Stable hash compatible with operator==. */
    std::size_t hash() const;

  private:
    std::variant<Unit, bool, std::int64_t, double,
                 std::shared_ptr<ValueTuple>>
        repr_;
};

/**
 * A token: a payload plus an optional reorder tag.
 *
 * Outside Tagger/Untagger regions tokens are untagged; inside, every
 * token carries the tag assigned at region entry so the Untagger can
 * restore program order.
 */
struct Token
{
    Value value;
    std::optional<Tag> tag;

    Token() = default;
    explicit Token(Value v) : value(std::move(v)) {}
    Token(Value v, Tag t) : value(std::move(v)), tag(t) {}

    bool operator==(const Token& other) const
    {
        return value == other.value && tag == other.tag;
    }

    std::string toString() const;
    std::size_t hash() const;
};

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_TOKEN_HPP
