#ifndef GRAPHITI_SUPPORT_RESULT_HPP
#define GRAPHITI_SUPPORT_RESULT_HPP

/**
 * @file
 * A small expected-style result type used across the library.
 *
 * Parsing, matching and rewriting are all operations that can fail for
 * user-visible reasons (malformed dot input, a pattern that does not
 * match, a rewrite whose side conditions are violated). Those failures
 * are values, not exceptions; exceptions are reserved for internal
 * invariant violations.
 */

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace graphiti {

/** Error payload: a human-readable message with optional context. */
struct Error
{
    std::string message;

    explicit Error(std::string msg) : message(std::move(msg)) {}

    /** Prefix the message with additional context. */
    Error context(const std::string& what) const
    {
        return Error(what + ": " + message);
    }
};

/**
 * Result of a fallible operation: either a value of type T or an Error.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Error error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Access the value; throws if this holds an error. */
    const T&
    value() const
    {
        if (!value_)
            throw std::runtime_error("Result::value on error: " +
                                     error_->message);
        return *value_;
    }

    T&
    value()
    {
        if (!value_)
            throw std::runtime_error("Result::value on error: " +
                                     error_->message);
        return *value_;
    }

    T
    take()
    {
        if (!value_)
            throw std::runtime_error("Result::take on error: " +
                                     error_->message);
        return std::move(*value_);
    }

    const Error&
    error() const
    {
        if (!error_)
            throw std::runtime_error("Result::error on success");
        return *error_;
    }

    /** Map the error, keeping the value untouched. */
    Result<T>
    withContext(const std::string& what) &&
    {
        if (error_)
            return Result<T>(error_->context(what));
        return std::move(*this);
    }

  private:
    std::optional<T> value_;
    std::optional<Error> error_;
};

/** Convenience constructor for error results. */
inline Error
err(std::string message)
{
    return Error(std::move(message));
}

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_RESULT_HPP
