#ifndef GRAPHITI_SUPPORT_BACKOFF_HPP
#define GRAPHITI_SUPPORT_BACKOFF_HPP

/**
 * @file
 * Exponential backoff with deterministic full jitter.
 *
 * The served client retries shed or transport-failed requests; naive
 * fixed retries synchronize into thundering herds the moment the
 * daemon sheds a burst. Full jitter (delay drawn uniformly from
 * [0, min(cap, base * 2^attempt))) decorrelates retriers while the
 * expected delay still doubles per attempt. Draws come from the
 * repo's splitmix Rng, so a seeded client replays the identical retry
 * schedule — the property the served tests pin down.
 */

#include <algorithm>
#include <cstdint>

#include "support/rng.hpp"

namespace graphiti {

/** Retry shape shared by the served client and the bench harness. */
struct BackoffPolicy
{
    /** Give up after this many attempts (the first call counts). */
    std::size_t max_attempts = 5;
    /** Ceiling of the un-jittered delay for attempt 0. */
    double base_ms = 25.0;
    /** Hard ceiling of any delay. */
    double cap_ms = 2000.0;
};

/**
 * Delay before retry number @p attempt (0-based), with full jitter
 * drawn from @p rng. A server-provided retry_after hint raises the
 * floor: the daemon knows its queue depth better than the client.
 */
inline double
backoffDelayMs(const BackoffPolicy& policy, std::size_t attempt,
               Rng& rng, double retry_after_hint_ms = 0.0)
{
    double ceiling = policy.base_ms;
    for (std::size_t i = 0; i < attempt && ceiling < policy.cap_ms; ++i)
        ceiling *= 2.0;
    ceiling = std::min(ceiling, policy.cap_ms);
    double jittered = rng.uniform() * ceiling;
    return std::max(jittered, retry_after_hint_ms);
}

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_BACKOFF_HPP
