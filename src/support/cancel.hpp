#ifndef GRAPHITI_SUPPORT_CANCEL_HPP
#define GRAPHITI_SUPPORT_CANCEL_HPP

/**
 * @file
 * Cooperative cancellation and deadline tokens.
 *
 * Long-running phases (state-space exploration, the simulation game,
 * cycle simulation) poll a StopToken at bounded intervals and unwind
 * with a structured reason instead of blowing past a caller's budget.
 * Tokens are shared-state handles: copying a token shares the flag, so
 * one guard::Governor can arm every phase of a compilation at once.
 *
 * Deadlines use the steady clock; an explicit requestStop() wins over
 * the deadline so callers can also cancel from another thread.
 */

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

namespace graphiti {

/** Shared cancellation + deadline handle. Default state: never stops. */
class StopToken
{
  public:
    StopToken() = default;

    /**
     * An armed token with no deadline: it only stops on an explicit
     * requestStop. Sharing requires arming first — copies of a
     * default-constructed token do not share state, so a handle meant
     * to be cancelled from another thread must start out armed.
     */
    static StopToken
    manual()
    {
        StopToken token;
        token.ensureState();
        return token;
    }

    /** A token that stops once @p seconds of wall time elapse. */
    static StopToken
    withDeadline(double seconds)
    {
        StopToken token;
        token.ensureState();
        token.state_->deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
        token.state_->has_deadline = true;
        return token;
    }

    /** Request a stop with a reason (thread-safe, idempotent: the
     * first reason wins). */
    void
    requestStop(const std::string& reason)
    {
        ensureState();
        bool expected = false;
        // Claim first, publish last: the reason string must be fully
        // written before cancelled becomes visible, so a concurrent
        // reason() reader never observes a half-written string.
        if (state_->claimed.compare_exchange_strong(expected, true)) {
            state_->reason = reason;
            state_->cancelled.store(true, std::memory_order_release);
        }
    }

    /** True when a stop was requested or the deadline passed. */
    bool
    stopRequested() const
    {
        if (state_ == nullptr)
            return false;
        if (state_->cancelled.load(std::memory_order_acquire))
            return true;
        if (state_->has_deadline &&
            std::chrono::steady_clock::now() >= state_->deadline) {
            // Latch, so reason() is stable afterwards.
            const_cast<StopToken*>(this)->requestStop("deadline exceeded");
            return true;
        }
        return false;
    }

    /** Why the token stopped; empty while it has not. */
    std::string
    reason() const
    {
        if (state_ == nullptr ||
            !state_->cancelled.load(std::memory_order_acquire))
            return "";
        return state_->reason;
    }

    /** Whether this token can ever stop (has shared state). */
    bool armed() const { return state_ != nullptr; }

  private:
    struct State
    {
        std::atomic<bool> claimed{false};
        std::atomic<bool> cancelled{false};
        std::string reason;
        bool has_deadline = false;
        std::chrono::steady_clock::time_point deadline;
    };

    void
    ensureState()
    {
        if (state_ == nullptr)
            state_ = std::make_shared<State>();
    }

    std::shared_ptr<State> state_;
};

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_CANCEL_HPP
