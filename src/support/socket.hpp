#ifndef GRAPHITI_SUPPORT_SOCKET_HPP
#define GRAPHITI_SUPPORT_SOCKET_HPP

/**
 * @file
 * Thin RAII wrappers over POSIX sockets for the compile service
 * (docs/service.md): unix-domain listeners for the local daemon, an
 * optional loopback TCP listener, and blocking-with-timeout reads and
 * writes that never raise SIGPIPE.
 *
 * These are deliberately minimal — no event loop, no buffering; the
 * served framing layer (served/protocol.hpp) does its own length
 * accounting on top. Every operation reports failures as Result
 * values, never exceptions, matching the rest of the codebase.
 */

#include <cstdint>
#include <string>

#include "support/result.hpp"

namespace graphiti::net {

/** One owned file descriptor; closed on destruction, movable. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket&
    operator=(Socket&& other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Close now (idempotent). */
    void close();

    /** Release ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/** Listen on a unix-domain socket at @p path (unlinks a stale file). */
Result<Socket> listenUnix(const std::string& path, int backlog = 64);

/** Listen on loopback TCP port @p port (0 picks an ephemeral port). */
Result<Socket> listenTcp(std::uint16_t port, int backlog = 64);

/** The port a TCP listener actually bound (for port = 0). */
Result<std::uint16_t> boundPort(const Socket& listener);

/** Connect to a unix-domain socket. */
Result<Socket> connectUnix(const std::string& path);

/** Connect to loopback TCP @p port. */
Result<Socket> connectTcp(std::uint16_t port);

/**
 * Accept one connection, waiting at most @p timeout_ms (-1 = forever).
 * Returns an invalid Socket on timeout (not an error), so accept loops
 * can poll a shutdown flag between waits.
 */
Result<Socket> acceptConnection(const Socket& listener, int timeout_ms);

/** Wait until @p socket is readable; false on timeout. */
Result<bool> waitReadable(const Socket& socket, int timeout_ms);

/**
 * Read up to @p max bytes into @p out (appended), waiting at most
 * @p timeout_ms for data. Returns the byte count: 0 means the peer
 * closed the connection. Timeouts are errors ("read timeout").
 */
Result<std::size_t> readSome(const Socket& socket, std::string& out,
                             std::size_t max, int timeout_ms);

/** Write all of @p data (handles partial writes; no SIGPIPE). */
Result<bool> writeAll(const Socket& socket, const std::string& data,
                      int timeout_ms);

/** True when the peer has closed (half- or full-close) — a zero-byte
 * MSG_PEEK probe; never consumes data. */
bool peerClosed(const Socket& socket);

}  // namespace graphiti::net

#endif  // GRAPHITI_SUPPORT_SOCKET_HPP
