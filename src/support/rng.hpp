#ifndef GRAPHITI_SUPPORT_RNG_HPP
#define GRAPHITI_SUPPORT_RNG_HPP

/**
 * @file
 * Deterministic pseudo-random generator (splitmix64).
 *
 * Used by the trace-inclusion tester and workload generators. We avoid
 * std::mt19937 so test results are reproducible across standard-library
 * implementations.
 */

#include <cstdint>

namespace graphiti {

/** Deterministic 64-bit PRNG with a tiny state. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit sample. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_RNG_HPP
