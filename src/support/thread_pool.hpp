#ifndef GRAPHITI_SUPPORT_THREAD_POOL_HPP
#define GRAPHITI_SUPPORT_THREAD_POOL_HPP

/**
 * @file
 * Fixed-size work-stealing thread pool for the parallel verification
 * core (docs/parallelism.md).
 *
 * A pool owns `size() - 1` worker threads; the thread that calls
 * parallelFor participates as lane 0, so `ThreadPool(1)` never spawns
 * a thread and runs every loop inline — byte-for-byte the sequential
 * code path. Work is distributed as contiguous index chunks onto
 * per-lane deques; a lane that drains its own deque steals from the
 * back of a sibling's, so uneven chunks (state expansions vary wildly
 * in cost) still load-balance.
 *
 * Determinism contract: parallelFor only promises that fn(i) runs
 * exactly once per index, on some lane, before the call returns (it
 * is a barrier). Callers that need deterministic *results* must make
 * fn(i) write only to slot i of a pre-sized output and do any
 * order-sensitive merging themselves after the barrier — the pattern
 * every parallel phase in refine/ follows.
 *
 * Tasks must not throw: exceptions cannot cross the lane boundary, so
 * fn is run under a terminate-on-throw contract (the codebase reports
 * errors through Result values, never exceptions).
 *
 * Nested parallelFor calls (from inside a task) degrade gracefully:
 * the inner loop runs inline on the calling lane instead of
 * deadlocking on the pool's own workers.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace graphiti {

class ThreadPool
{
  public:
    /** Occupancy counters of one lane (see stats()). */
    struct LaneStats
    {
        /** Chunks this lane executed. */
        std::uint64_t chunks = 0;
        /** Chunks it took from a sibling's deque. */
        std::uint64_t steals = 0;
        /** Time spent waiting for work (between batches, and the
         * caller's barrier wait at the end of a batch). */
        std::uint64_t idle_ns = 0;
    };

    /**
     * One pool's lifetime occupancy snapshot. Pure observation: the
     * counters are written with relaxed atomics off the chunk path
     * (never per index) and feed no scheduling decision, so verdicts
     * stay byte-identical at any thread count (docs/parallelism.md).
     * Invariant the obs tests pin down: the lanes' chunks sum to
     * chunks_submitted — work stealing moves chunks, never loses or
     * duplicates them. Inline runs (size() == 1, tiny batches, nested
     * loops) are attributed to lane 0.
     */
    struct PoolStats
    {
        std::vector<LaneStats> lanes;
        std::uint64_t chunks_submitted = 0;
        std::uint64_t batches = 0;
    };

    /**
     * Create a pool with @p threads total lanes (including the
     * caller). 0 means hardwareThreads(); 1 means fully inline.
     */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total lanes, including the calling thread. Always >= 1. */
    std::size_t size() const { return size_; }

    /** std::thread::hardware_concurrency, floored at 1. */
    static std::size_t hardwareThreads();

    /**
     * Resolve a thread-count knob: 0 -> hardwareThreads(), otherwise
     * the value itself. Shared by every `threads` option so knobs
     * agree on what "default" means.
     */
    static std::size_t resolveThreads(std::size_t requested);

    /**
     * Run fn(i) once for every i in [0, n), in parallel, and return
     * when all calls finished (a barrier). With size() == 1, or n < 2,
     * or when called from inside a pool task, the loop runs inline.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

    /**
     * Chunked variant: fn(begin, end) over a partition of [0, n).
     * Lanes steal whole chunks, so fn amortizes per-chunk setup
     * (thread-local buffers) across many indices.
     */
    void parallelForChunks(
        std::size_t n,
        const std::function<void(std::size_t, std::size_t)>& fn);

    /** Lifetime occupancy snapshot (any thread, any time). */
    PoolStats stats() const;

  private:
    struct Impl;
    Impl* impl_ = nullptr;  // null when size_ == 1 (inline pool)
    std::size_t size_ = 1;
    /** Chunks run inline (no Impl, n < 2, or nested call). */
    std::atomic<std::uint64_t> inline_chunks_{0};
};

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_THREAD_POOL_HPP
