#ifndef GRAPHITI_SUPPORT_THREAD_POOL_HPP
#define GRAPHITI_SUPPORT_THREAD_POOL_HPP

/**
 * @file
 * Fixed-size work-stealing thread pool for the parallel verification
 * core (docs/parallelism.md).
 *
 * A pool owns `size() - 1` worker threads; the thread that calls
 * parallelFor participates as lane 0, so `ThreadPool(1)` never spawns
 * a thread and runs every loop inline — byte-for-byte the sequential
 * code path. Work is distributed as contiguous index chunks onto
 * per-lane deques; a lane that drains its own deque steals from the
 * back of a sibling's, so uneven chunks (state expansions vary wildly
 * in cost) still load-balance.
 *
 * Determinism contract: parallelFor only promises that fn(i) runs
 * exactly once per index, on some lane, before the call returns (it
 * is a barrier). Callers that need deterministic *results* must make
 * fn(i) write only to slot i of a pre-sized output and do any
 * order-sensitive merging themselves after the barrier — the pattern
 * every parallel phase in refine/ follows.
 *
 * Tasks must not throw: exceptions cannot cross the lane boundary, so
 * fn is run under a terminate-on-throw contract (the codebase reports
 * errors through Result values, never exceptions).
 *
 * Nested parallelFor calls (from inside a task) degrade gracefully:
 * the inner loop runs inline on the calling lane instead of
 * deadlocking on the pool's own workers.
 */

#include <cstddef>
#include <functional>

namespace graphiti {

class ThreadPool
{
  public:
    /**
     * Create a pool with @p threads total lanes (including the
     * caller). 0 means hardwareThreads(); 1 means fully inline.
     */
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total lanes, including the calling thread. Always >= 1. */
    std::size_t size() const { return size_; }

    /** std::thread::hardware_concurrency, floored at 1. */
    static std::size_t hardwareThreads();

    /**
     * Resolve a thread-count knob: 0 -> hardwareThreads(), otherwise
     * the value itself. Shared by every `threads` option so knobs
     * agree on what "default" means.
     */
    static std::size_t resolveThreads(std::size_t requested);

    /**
     * Run fn(i) once for every i in [0, n), in parallel, and return
     * when all calls finished (a barrier). With size() == 1, or n < 2,
     * or when called from inside a pool task, the loop runs inline.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

    /**
     * Chunked variant: fn(begin, end) over a partition of [0, n).
     * Lanes steal whole chunks, so fn amortizes per-chunk setup
     * (thread-local buffers) across many indices.
     */
    void parallelForChunks(
        std::size_t n,
        const std::function<void(std::size_t, std::size_t)>& fn);

  private:
    struct Impl;
    Impl* impl_ = nullptr;  // null when size_ == 1 (inline pool)
    std::size_t size_ = 1;
};

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_THREAD_POOL_HPP
