#ifndef GRAPHITI_SUPPORT_STRINGS_HPP
#define GRAPHITI_SUPPORT_STRINGS_HPP

/**
 * @file
 * Small string utilities shared by the dot parser and pretty printers.
 */

#include <string>
#include <string_view>
#include <vector>

namespace graphiti {

/** Split @p input on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view input, char sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(std::string_view input);

/** True when @p input starts with @p prefix. */
bool startsWith(std::string_view input, std::string_view prefix);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

}  // namespace graphiti

#endif  // GRAPHITI_SUPPORT_STRINGS_HPP
