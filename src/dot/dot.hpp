#ifndef GRAPHITI_DOT_DOT_HPP
#define GRAPHITI_DOT_DOT_HPP

/**
 * @file
 * Parser and printer for the dot dialect exchanged with Dynamatic.
 *
 * The dialect is a restricted Graphviz digraph (figure 1 of the paper):
 *
 *     digraph circuit {
 *       mux1   [type = "mux"];
 *       mod1   [type = "operator", op = "mod", latency = "4"];
 *       in_a   [type = "input", index = "0"];
 *       out_r  [type = "output", index = "0"];
 *       mux1 -> mod1 [from = "out0", to = "in0"];
 *       in_a -> mux1 [to = "in2"];
 *       mod1 -> out_r [from = "out0"];
 *     }
 *
 * Nodes carry a mandatory `type` attribute plus type parameters. The
 * pseudo-types `input` / `output` with an `index` attribute represent
 * the circuit's dangling I/O ports. Edges carry `from` / `to` port
 * attributes (defaulting to out0 / in0).
 */

#include <string>

#include "graph/expr_high.hpp"
#include "support/result.hpp"

namespace graphiti {

/** Parse a dot document into an ExprHigh graph. */
Result<ExprHigh> parseDot(const std::string& text);

/** Render an ExprHigh graph as a dot document (round-trips parseDot). */
std::string printDot(const ExprHigh& graph,
                     const std::string& name = "circuit");

}  // namespace graphiti

#endif  // GRAPHITI_DOT_DOT_HPP
