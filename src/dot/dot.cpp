#include "dot/dot.hpp"

#include <cctype>

#include "graph/signatures.hpp"
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace graphiti {

namespace {

/** Largest accepted io `index` attribute: bounds the I/O tables a
 * hostile document can make the parser allocate. */
constexpr int kMaxIoIndex = 4095;

/** Token kinds produced by the dot lexer. */
enum class TokKind {
    ident,    // bare identifier or quoted string
    symbol,   // one of { } [ ] = , ;
    arrow,    // ->
    end,      // end of input
};

struct Tok
{
    TokKind kind;
    std::string text;
    int line;
};

/** Lexer for the restricted dot dialect. */
class Lexer
{
  public:
    explicit Lexer(const std::string& text) : text_(text) {}

    Result<std::vector<Tok>>
    run()
    {
        std::vector<Tok> toks;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && peek(1) == '/') {
                skipLine();
            } else if (c == '#') {
                skipLine();
            } else if (c == '/' && peek(1) == '*') {
                if (!skipBlockComment())
                    return err("unterminated block comment at line " +
                               std::to_string(line_));
            } else if (c == '-' && peek(1) == '>') {
                toks.push_back(Tok{TokKind::arrow, "->", line_});
                pos_ += 2;
            } else if (std::string("{}[]=,;").find(c) !=
                       std::string::npos) {
                toks.push_back(Tok{TokKind::symbol, std::string(1, c),
                                   line_});
                ++pos_;
            } else if (c == '"') {
                Result<std::string> s = lexQuoted();
                if (!s.ok())
                    return s.error();
                toks.push_back(Tok{TokKind::ident, s.take(), line_});
            } else if (std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_' || c == '.' || c == '-') {
                toks.push_back(Tok{TokKind::ident, lexBare(), line_});
            } else {
                return err("unexpected character '" + std::string(1, c) +
                           "' at line " + std::to_string(line_));
            }
        }
        toks.push_back(Tok{TokKind::end, "", line_});
        return toks;
    }

  private:
    char
    peek(std::size_t ahead) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }

    void
    skipLine()
    {
        while (pos_ < text_.size() && text_[pos_] != '\n')
            ++pos_;
    }

    bool
    skipBlockComment()
    {
        pos_ += 2;
        while (pos_ + 1 < text_.size()) {
            if (text_[pos_] == '\n')
                ++line_;
            if (text_[pos_] == '*' && text_[pos_ + 1] == '/') {
                pos_ += 2;
                return true;
            }
            ++pos_;
        }
        return false;
    }

    Result<std::string>
    lexQuoted()
    {
        ++pos_;  // opening quote
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size())
                ++pos_;
            if (text_[pos_] == '\n')
                ++line_;
            out += text_[pos_++];
        }
        if (pos_ >= text_.size())
            return err("unterminated string at line " +
                       std::to_string(line_));
        ++pos_;  // closing quote
        return out;
    }

    std::string
    lexBare()
    {
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '.' || c == '-') {
                out += c;
                ++pos_;
            } else {
                break;
            }
        }
        return out;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

    Result<ExprHigh>
    run()
    {
        if (!expectIdent("digraph"))
            return fail("expected 'digraph'");
        if (cur().kind == TokKind::ident)
            advance();  // optional graph name
        if (!expectSymbol("{"))
            return fail("expected '{'");

        while (!atSymbol("}") && cur().kind != TokKind::end) {
            Result<bool> stmt = parseStatement();
            if (!stmt.ok())
                return stmt.error();
        }
        if (!expectSymbol("}"))
            return fail("expected '}'");
        return finish();
    }

  private:
    const Tok& cur() const { return toks_[idx_]; }
    void advance() { if (idx_ + 1 < toks_.size()) ++idx_; }

    bool
    atSymbol(const std::string& s) const
    {
        return cur().kind == TokKind::symbol && cur().text == s;
    }

    bool
    expectSymbol(const std::string& s)
    {
        if (!atSymbol(s))
            return false;
        advance();
        return true;
    }

    bool
    expectIdent(const std::string& s)
    {
        if (cur().kind != TokKind::ident || cur().text != s)
            return false;
        advance();
        return true;
    }

    Error
    fail(const std::string& what) const
    {
        return err("dot parse error at line " + std::to_string(cur().line) +
                   ": " + what + " (got '" + cur().text + "')");
    }

    Result<AttrMap>
    parseAttrList()
    {
        AttrMap attrs;
        if (!atSymbol("["))
            return attrs;
        advance();
        while (!atSymbol("]")) {
            if (cur().kind != TokKind::ident)
                return fail("expected attribute name");
            std::string key = cur().text;
            advance();
            if (!expectSymbol("="))
                return fail("expected '=' after attribute name");
            if (cur().kind != TokKind::ident)
                return fail("expected attribute value");
            attrs[key] = cur().text;
            advance();
            if (atSymbol(","))
                advance();
        }
        advance();  // ]
        return attrs;
    }

    Result<bool>
    parseStatement()
    {
        if (cur().kind != TokKind::ident)
            return fail("expected node name");
        std::string name = cur().text;
        advance();

        if (cur().kind == TokKind::arrow) {
            advance();
            if (cur().kind != TokKind::ident)
                return fail("expected edge target");
            std::string target = cur().text;
            advance();
            Result<AttrMap> attrs = parseAttrList();
            if (!attrs.ok())
                return attrs.error();
            RawEdge e;
            e.src = name;
            e.dst = target;
            e.from = attrStr(attrs.value(), "from", "out0");
            e.to = attrStr(attrs.value(), "to", "in0");
            edges_.push_back(std::move(e));
        } else {
            Result<AttrMap> attrs = parseAttrList();
            if (!attrs.ok())
                return attrs.error();
            nodes_.emplace_back(name, attrs.take());
        }
        if (atSymbol(";"))
            advance();
        return true;
    }

    Result<ExprHigh>
    finish()
    {
        ExprHigh graph;
        // io pseudo-node -> index
        std::map<std::string, std::pair<bool, std::size_t>> io_nodes;
        // (is_input, index) pairs already claimed by a pseudo-node.
        std::set<std::pair<bool, std::size_t>> io_indices;

        for (auto& [name, attrs] : nodes_) {
            auto type_it = attrs.find("type");
            if (type_it == attrs.end())
                return err("node '" + name + "' has no type attribute");
            std::string type = type_it->second;
            if (type == "input" || type == "output") {
                int index = attrInt(attrs, "index", -1);
                if (index < 0)
                    return err("io node '" + name +
                               "' needs a non-negative integer index "
                               "attribute");
                if (index > kMaxIoIndex)
                    return err("io node '" + name + "' index " +
                               std::to_string(index) +
                               " exceeds the supported bound " +
                               std::to_string(kMaxIoIndex));
                if (io_nodes.count(name) > 0 || graph.hasNode(name))
                    return err("duplicate node name: '" + name + "'");
                bool is_input = type == "input";
                if (!io_indices
                         .insert({is_input,
                                  static_cast<std::size_t>(index)})
                         .second)
                    return err("duplicate " + type + " index " +
                               std::to_string(index) + " at io node '" +
                               name + "'");
                io_nodes[name] = {is_input,
                                  static_cast<std::size_t>(index)};
                continue;
            }
            if (io_nodes.count(name) > 0 || graph.hasNode(name))
                return err("duplicate node name: '" + name + "'");
            AttrMap rest = attrs;
            rest.erase("type");
            graph.addNode(name, type, std::move(rest));
        }

        for (const RawEdge& e : edges_) {
            auto src_io = io_nodes.find(e.src);
            auto dst_io = io_nodes.find(e.dst);
            if (src_io != io_nodes.end() && dst_io != io_nodes.end())
                return err("edge connects two io pseudo-nodes: " + e.src +
                           " -> " + e.dst);
            if (src_io != io_nodes.end()) {
                if (!src_io->second.first)
                    return err("edge leaves an output pseudo-node: " +
                               e.src);
                std::size_t idx = src_io->second.second;
                if (idx < graph.inputs().size() && graph.inputs()[idx])
                    return err("input pseudo-node '" + e.src +
                               "' drives more than one port");
                graph.bindInput(idx, PortRef{e.dst, e.to});
            } else if (dst_io != io_nodes.end()) {
                if (dst_io->second.first)
                    return err("edge enters an input pseudo-node: " +
                               e.dst);
                std::size_t idx = dst_io->second.second;
                if (idx < graph.outputs().size() && graph.outputs()[idx])
                    return err("output pseudo-node '" + e.dst +
                               "' is fed by more than one port");
                graph.bindOutput(idx, PortRef{e.src, e.from});
            } else {
                graph.connect(PortRef{e.src, e.from}, PortRef{e.dst, e.to});
            }
        }

        Result<bool> valid = graph.validate();
        if (!valid.ok())
            return valid.error().context("parseDot");
        return graph;
    }

    struct RawEdge
    {
        std::string src, dst, from, to;
    };

    std::vector<Tok> toks_;
    std::size_t idx_ = 0;
    std::vector<std::pair<std::string, AttrMap>> nodes_;
    std::vector<RawEdge> edges_;
};

std::string
quote(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

Result<ExprHigh>
parseDot(const std::string& text)
{
    Lexer lexer(text);
    Result<std::vector<Tok>> toks = lexer.run();
    if (!toks.ok())
        return toks.error();
    Parser parser(toks.take());
    return parser.run();
}

std::string
printDot(const ExprHigh& graph, const std::string& name)
{
    std::ostringstream os;
    os << "digraph " << name << " {\n";
    for (const NodeDecl& node : graph.nodes()) {
        os << "  " << node.name << " [type = " << quote(node.type);
        for (const auto& [key, value] : node.attrs)
            os << ", " << key << " = " << quote(value);
        os << "];\n";
    }
    for (std::size_t i = 0; i < graph.inputs().size(); ++i) {
        if (!graph.inputs()[i])
            continue;
        os << "  __in" << i << " [type = \"input\", index = \"" << i
           << "\"];\n";
        os << "  __in" << i << " -> " << graph.inputs()[i]->inst
           << " [to = " << quote(graph.inputs()[i]->port) << "];\n";
    }
    for (std::size_t i = 0; i < graph.outputs().size(); ++i) {
        if (!graph.outputs()[i])
            continue;
        os << "  __out" << i << " [type = \"output\", index = \"" << i
           << "\"];\n";
        os << "  " << graph.outputs()[i]->inst << " -> __out" << i
           << " [from = " << quote(graph.outputs()[i]->port) << "];\n";
    }
    for (const Edge& e : graph.edges()) {
        os << "  " << e.src.inst << " -> " << e.dst.inst
           << " [from = " << quote(e.src.port)
           << ", to = " << quote(e.dst.port) << "];\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace graphiti
