#ifndef GRAPHITI_SEMANTICS_ENVIRONMENT_HPP
#define GRAPHITI_SEMANTICS_ENVIRONMENT_HPP

/**
 * @file
 * The component environment ε (figure 7): a mapping from component
 * type (plus attributes) to its semantic module.
 *
 * The environment also owns the pure-function registry, since a
 * "pure" node's semantics is determined by its `fn` attribute, and a
 * global queue-capacity option used to obtain finite-state
 * instantiations for the refinement checker.
 */

#include <map>
#include <memory>
#include <string>

#include "graph/expr_high.hpp"
#include "semantics/component.hpp"
#include "semantics/functions.hpp"
#include "support/result.hpp"

namespace graphiti {

/** The environment ε: component type + attrs -> semantic module. */
class Environment
{
  public:
    /** @param capacity queue bound for created components. */
    explicit Environment(std::size_t capacity = kUnbounded);

    /** An environment sharing @p functions (e.g. a bounded-queue copy
     * of another environment for refinement checking). */
    Environment(std::size_t capacity,
                std::shared_ptr<FnRegistry> functions);

    /** Registry of pure functions referenced by "pure" nodes. */
    FnRegistry& functions() { return *functions_; }
    const FnRegistry& functions() const { return *functions_; }

    /** Share one registry between several environments. */
    std::shared_ptr<FnRegistry> functionsPtr() const { return functions_; }

    std::size_t capacity() const { return capacity_; }

    /**
     * Look up (creating and caching) the semantic module for a node of
     * @p type with @p attrs. Fails for unknown types, malformed
     * attributes, or a "pure" node whose `fn` is not registered.
     */
    Result<ComponentPtr> lookup(const std::string& type,
                                const AttrMap& attrs) const;

  private:
    std::size_t capacity_;
    std::shared_ptr<FnRegistry> functions_;
    mutable std::map<std::string, ComponentPtr> cache_;
};

/** Parse a constant node's `value` attribute into a Value. */
Result<Value> parseConstant(const std::string& text);

}  // namespace graphiti

#endif  // GRAPHITI_SEMANTICS_ENVIRONMENT_HPP
