#include "semantics/module.hpp"

#include <algorithm>

#include "graph/signatures.hpp"

namespace graphiti {

Result<DenotedModule>
DenotedModule::denote(const ExprLow& expr, const Environment& env)
{
    DenotedModule mod;

    // Product of base components: one slot each, ports renamed per the
    // base's port maps (the rename of section 4.5).
    Result<DenotedModule> failure = err("");
    bool failed = false;
    expr.forEachBase([&](const LowBase& base) {
        if (failed)
            return;
        Result<ComponentPtr> comp = env.lookup(base.type, base.attrs);
        if (!comp.ok()) {
            failure = comp.error().context("denote: instance " + base.inst);
            failed = true;
            return;
        }
        Result<Signature> sig = signatureOf(base.type, base.attrs);
        if (!sig.ok()) {
            failure = sig.error().context("denote: instance " + base.inst);
            failed = true;
            return;
        }
        int slot = static_cast<int>(mod.slots_.size());
        mod.slots_.push_back(Slot{comp.take(), base.inst});
        const Signature& s = sig.value();
        for (std::size_t p = 0; p < s.inputs.size(); ++p) {
            auto it = base.inputs.find(s.inputs[p]);
            if (it == base.inputs.end()) {
                failure = err("denote: instance " + base.inst +
                              " missing input map for " + s.inputs[p]);
                failed = true;
                return;
            }
            if (!mod.inputs_
                     .emplace(it->second,
                              PortLoc{slot, static_cast<int>(p)})
                     .second) {
                failure = err("denote: duplicate input name " +
                              it->second.toString());
                failed = true;
                return;
            }
        }
        for (std::size_t p = 0; p < s.outputs.size(); ++p) {
            auto it = base.outputs.find(s.outputs[p]);
            if (it == base.outputs.end()) {
                failure = err("denote: instance " + base.inst +
                              " missing output map for " + s.outputs[p]);
                failed = true;
                return;
            }
            if (!mod.outputs_
                     .emplace(it->second,
                              PortLoc{slot, static_cast<int>(p)})
                     .second) {
                failure = err("denote: duplicate output name " +
                              it->second.toString());
                failed = true;
                return;
            }
        }
    });
    if (failed)
        return failure;

    // Connections: remove the external transitions, fuse them into an
    // internal transition (the [o ~> i] combinator).
    expr.forEachConnection([&](const LowPortId& out, const LowPortId& in) {
        if (failed)
            return;
        auto oit = mod.outputs_.find(out);
        auto iit = mod.inputs_.find(in);
        if (oit == mod.outputs_.end() || iit == mod.inputs_.end()) {
            failure = err("denote: connect references missing port " +
                          out.toString() + " -> " + in.toString());
            failed = true;
            return;
        }
        mod.conns_.push_back(Conn{oit->second, iit->second});
        mod.outputs_.erase(oit);
        mod.inputs_.erase(iit);
    });
    if (failed)
        return failure;

    for (const auto& [name, loc] : mod.inputs_)
        mod.in_names_.push_back(name);
    for (const auto& [name, loc] : mod.outputs_)
        mod.out_names_.push_back(name);
    return mod;
}

GraphState
DenotedModule::initialState() const
{
    GraphState s;
    s.comps.reserve(slots_.size());
    for (const Slot& slot : slots_)
        s.comps.push_back(slot.comp->initialState());
    return s;
}

std::vector<GraphState>
DenotedModule::inputStep(const GraphState& state, const LowPortId& name,
                         const Token& token) const
{
    auto it = inputs_.find(name);
    if (it == inputs_.end())
        return {};
    const PortLoc& loc = it->second;
    std::vector<CompState> succs = slots_[loc.slot].comp->acceptInput(
        state.comps[loc.slot], loc.port, token);
    std::vector<GraphState> out;
    out.reserve(succs.size());
    for (CompState& s : succs) {
        GraphState next = state;
        next.comps[loc.slot] = std::move(s);
        out.push_back(std::move(next));
    }
    return out;
}

std::vector<std::pair<Token, GraphState>>
DenotedModule::outputStep(const GraphState& state,
                          const LowPortId& name) const
{
    auto it = outputs_.find(name);
    if (it == outputs_.end())
        return {};
    const PortLoc& loc = it->second;
    auto succs = slots_[loc.slot].comp->emitOutput(state.comps[loc.slot],
                                                   loc.port);
    std::vector<std::pair<Token, GraphState>> out;
    out.reserve(succs.size());
    for (auto& [token, s] : succs) {
        GraphState next = state;
        next.comps[loc.slot] = std::move(s);
        out.emplace_back(std::move(token), std::move(next));
    }
    return out;
}

std::vector<GraphState>
DenotedModule::internalSteps(const GraphState& state) const
{
    std::vector<GraphState> out;

    // Per-component internal transitions, lifted to the product state.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        for (CompState& s :
             slots_[i].comp->internalSteps(state.comps[i])) {
            GraphState next = state;
            next.comps[i] = std::move(s);
            out.push_back(std::move(next));
        }
    }

    // Fused connection transitions: output then input, atomically,
    // with no internal step in between (section 4.5).
    for (const Conn& conn : conns_) {
        auto emissions = slots_[conn.src.slot].comp->emitOutput(
            state.comps[conn.src.slot], conn.src.port);
        for (auto& [token, src_state] : emissions) {
            const CompState& dst_before =
                conn.src.slot == conn.dst.slot ? src_state
                                               : state.comps[conn.dst.slot];
            std::vector<CompState> accepted =
                slots_[conn.dst.slot].comp->acceptInput(dst_before,
                                                        conn.dst.port,
                                                        token);
            for (CompState& dst_state : accepted) {
                GraphState next = state;
                next.comps[conn.src.slot] = src_state;
                next.comps[conn.dst.slot] = std::move(dst_state);
                out.push_back(std::move(next));
            }
        }
    }
    return out;
}

}  // namespace graphiti
