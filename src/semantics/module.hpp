#ifndef GRAPHITI_SEMANTICS_MODULE_HPP
#define GRAPHITI_SEMANTICS_MODULE_HPP

/**
 * @file
 * Denotation of EXPRLOW expressions into modules (section 4.5).
 *
 * ⟦base⟧ looks the component up in the environment and renames its
 * ports; ⟦e1 (x) e2⟧ is the product combinator ⊎ (state becomes the
 * product of the sub-states, transitions are lifted); and
 * ⟦connect(o, i, e)⟧ removes the o/i external transitions and adds the
 * fused internal transition r(s, s') = ∃v s''. out[o](s, v, s'') ∧
 * in[i](s'', v, s') — with *no* internal step allowed between the two,
 * the asymmetry that shapes the refinement definitions (section 4.4).
 *
 * DenotedModule is that module, flattened: a vector of component
 * slots (the product state), external port tables, and a connection
 * list (the fused internal transitions).
 */

#include <map>
#include <string>
#include <vector>

#include "graph/expr_low.hpp"
#include "semantics/environment.hpp"
#include "semantics/state.hpp"
#include "support/result.hpp"

namespace graphiti {

/** The module denoted by an ExprLow expression. */
class DenotedModule
{
  public:
    /** Denote @p expr in environment @p env. */
    static Result<DenotedModule> denote(const ExprLow& expr,
                                        const Environment& env);

    /** External input/output port names, in deterministic order. */
    const std::vector<LowPortId>& inputNames() const { return in_names_; }
    const std::vector<LowPortId>& outputNames() const { return out_names_; }

    bool hasInput(const LowPortId& name) const
    {
        return inputs_.count(name) > 0;
    }
    bool hasOutput(const LowPortId& name) const
    {
        return outputs_.count(name) > 0;
    }

    /** The initial state (every component in its initial state). */
    GraphState initialState() const;

    /** Input transition at external port @p name consuming @p token. */
    std::vector<GraphState> inputStep(const GraphState& state,
                                      const LowPortId& name,
                                      const Token& token) const;

    /** Output transition at external port @p name. */
    std::vector<std::pair<Token, GraphState>>
    outputStep(const GraphState& state, const LowPortId& name) const;

    /**
     * All internal successors: per-component internal transitions plus
     * the fused output-then-input transition of every connection.
     */
    std::vector<GraphState> internalSteps(const GraphState& state) const;

    /** Number of component slots in the product state. */
    std::size_t numSlots() const { return slots_.size(); }

    /** Instance name of slot @p i (for diagnostics). */
    const std::string& slotName(std::size_t i) const
    {
        return slots_[i].inst;
    }

  private:
    struct Slot
    {
        ComponentPtr comp;
        std::string inst;
    };

    /** (slot index, local port index) of an external port. */
    struct PortLoc
    {
        int slot;
        int port;
    };

    struct Conn
    {
        PortLoc src;
        PortLoc dst;
    };

    std::vector<Slot> slots_;
    std::map<LowPortId, PortLoc> inputs_;
    std::map<LowPortId, PortLoc> outputs_;
    std::vector<LowPortId> in_names_;
    std::vector<LowPortId> out_names_;
    std::vector<Conn> conns_;
};

}  // namespace graphiti

#endif  // GRAPHITI_SEMANTICS_MODULE_HPP
