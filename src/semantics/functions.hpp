#ifndef GRAPHITI_SEMANTICS_FUNCTIONS_HPP
#define GRAPHITI_SEMANTICS_FUNCTIONS_HPP

/**
 * @file
 * Evaluation of operators and registered pure functions.
 *
 * Operators ("operator" components with an `op` attribute) are the
 * fixed arithmetic/logic catalog; pure functions ("pure" components
 * with an `fn` attribute) are looked up in a registry because the Pure
 * generation rewrites (section 3.2) synthesize new functions on the
 * fly (compositions of operators, tuple shuffles, ...).
 */

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/result.hpp"
#include "support/token.hpp"

namespace graphiti {

/** A unary pure function over values, the payload of Pure components. */
using PureFn = std::function<Value(const Value&)>;

/** Evaluate operator @p op on @p args (arities per operatorArity). */
Result<Value> evalOperator(const std::string& op,
                           const std::vector<Value>& args);

/**
 * Registry of named pure functions.
 *
 * The registry is shared (by shared_ptr) between the environment, the
 * rewriting passes that mint new functions, and the simulator.
 */
class FnRegistry
{
  public:
    /** Register (or replace) function @p name. */
    void
    add(const std::string& name, PureFn fn)
    {
        fns_[name] = std::move(fn);
    }

    /** Look up @p name; nullptr when absent. */
    const PureFn*
    find(const std::string& name) const
    {
        auto it = fns_.find(name);
        return it == fns_.end() ? nullptr : &it->second;
    }

    bool has(const std::string& name) const { return find(name) != nullptr; }

    /** A name not yet present, with the given prefix. */
    std::string
    freshName(const std::string& prefix) const
    {
        for (std::size_t i = 0;; ++i) {
            std::string candidate = prefix + std::to_string(i);
            if (!has(candidate))
                return candidate;
        }
    }

  private:
    std::map<std::string, PureFn> fns_;
};

}  // namespace graphiti

#endif  // GRAPHITI_SEMANTICS_FUNCTIONS_HPP
