#ifndef GRAPHITI_SEMANTICS_EXECUTOR_HPP
#define GRAPHITI_SEMANTICS_EXECUTOR_HPP

/**
 * @file
 * A deterministic executor over denoted modules.
 *
 * The denotational semantics is a transition *relation*; the executor
 * resolves nondeterminism with a fixed pick-first scheduling policy,
 * yielding one legal behavior. This is how functional tests and the
 * examples run circuits end-to-end: feed tokens at the module inputs,
 * step the internal transitions, pull tokens at the outputs.
 */

#include <optional>
#include <vector>

#include "semantics/module.hpp"

namespace graphiti {

/** Executes one behavior of a denoted module. */
class Executor
{
  public:
    explicit Executor(const DenotedModule& mod)
        : mod_(&mod), state_(mod.initialState())
    {
    }

    /**
     * Consume @p token at input @p name.
     * @return false when the input transition is disabled.
     */
    bool feed(const LowPortId& name, Token token);

    /** Convenience: feed a plain value at numbered I/O input @p io. */
    bool feedIo(std::uint32_t io, Value value);

    /**
     * Apply internal transitions (pick-first) until quiescent or
     * @p max_steps transitions have fired.
     * @return the number of transitions applied.
     */
    std::size_t runInternal(std::size_t max_steps = 1 << 20);

    /** Try to emit one token at output @p name without stepping. */
    std::optional<Token> pull(const LowPortId& name);

    /**
     * Pull from @p name, interleaving internal steps until a token is
     * available or @p max_steps internal transitions have fired.
     */
    std::optional<Token> pullBlocking(const LowPortId& name,
                                      std::size_t max_steps = 1 << 20);

    /** Pull from numbered I/O output @p io, blocking as above. */
    std::optional<Token> pullIo(std::uint32_t io,
                                std::size_t max_steps = 1 << 20);

    const GraphState& state() const { return state_; }

  private:
    const DenotedModule* mod_;
    GraphState state_;
};

}  // namespace graphiti

#endif  // GRAPHITI_SEMANTICS_EXECUTOR_HPP
