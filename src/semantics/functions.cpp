#include "semantics/functions.hpp"

#include <cmath>

namespace graphiti {

namespace {

Result<Value>
intBinop(const std::string& op, std::int64_t a, std::int64_t b)
{
    if (op == "add")
        return Value(a + b);
    if (op == "sub")
        return Value(a - b);
    if (op == "mul")
        return Value(a * b);
    if (op == "div") {
        if (b == 0)
            return err("division by zero");
        return Value(a / b);
    }
    if (op == "mod") {
        if (b == 0)
            return err("modulo by zero");
        return Value(a % b);
    }
    if (op == "shl")
        return Value(a << (b & 63));
    if (op == "shr")
        return Value(a >> (b & 63));
    if (op == "and")
        return Value(a & b);
    if (op == "or")
        return Value(a | b);
    if (op == "xor")
        return Value(a ^ b);
    if (op == "lt")
        return Value(a < b);
    if (op == "le")
        return Value(a <= b);
    if (op == "gt")
        return Value(a > b);
    if (op == "ge")
        return Value(a >= b);
    return err("unknown integer operator: " + op);
}

}  // namespace

Result<Value>
evalOperator(const std::string& op, const std::vector<Value>& args)
{
    // Equality works on any payload.
    if (op == "eq")
        return Value(args.at(0) == args.at(1));
    if (op == "ne")
        return Value(args.at(0) != args.at(1));
    if (op == "id" || op == "trunc" || op == "zext" || op == "sext")
        return args.at(0);
    if (op == "not")
        return Value(!args.at(0).asBool());
    if (op == "neg")
        return Value(-args.at(0).asInt());
    if (op == "abs") {
        std::int64_t v = args.at(0).asInt();
        return Value(v < 0 ? -v : v);
    }
    if (op == "select")
        return args.at(0).asBool() ? args.at(1) : args.at(2);

    // Floating point catalog (double precision).
    if (op == "fadd")
        return Value(args.at(0).toDouble() + args.at(1).toDouble());
    if (op == "fsub")
        return Value(args.at(0).toDouble() - args.at(1).toDouble());
    if (op == "fmul")
        return Value(args.at(0).toDouble() * args.at(1).toDouble());
    if (op == "fdiv")
        return Value(args.at(0).toDouble() / args.at(1).toDouble());
    if (op == "flt")
        return Value(args.at(0).toDouble() < args.at(1).toDouble());
    if (op == "fge")
        return Value(args.at(0).toDouble() >= args.at(1).toDouble());
    if (op == "fneg")
        return Value(-args.at(0).toDouble());

    return intBinop(op, args.at(0).asInt(),
                    args.size() > 1 ? args.at(1).asInt() : 0);
}

}  // namespace graphiti
