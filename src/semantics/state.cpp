#include "semantics/state.hpp"

#include <sstream>

namespace graphiti {

namespace {

std::size_t
combineHash(std::size_t seed, std::size_t h)
{
    return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t
CompState::totalTokens() const
{
    std::size_t n = 0;
    for (const auto& q : queues)
        n += q.size();
    return n;
}

std::size_t
CompState::approxBytes() const
{
    // Size-based estimate (counts x element sizes), deliberately
    // ignoring vector slack: capacities depend on growth history, so
    // only sizes keep the figure a pure function of state content —
    // the property that makes peak-bytes stable per seed and equal at
    // any thread count. Tuple payloads count as one Token (shallow).
    std::size_t bytes = sizeof(CompState);
    for (const auto& q : queues)
        bytes += sizeof(q) + q.size() * sizeof(Token);
    bytes += regs.size() * sizeof(std::int64_t);
    return bytes;
}

std::size_t
CompState::hash() const
{
    std::size_t seed = 0x51ed;
    for (const auto& q : queues) {
        seed = combineHash(seed, q.size());
        for (const Token& t : q)
            seed = combineHash(seed, t.hash());
    }
    for (std::int64_t r : regs)
        seed = combineHash(seed, std::hash<std::int64_t>{}(r));
    return seed;
}

std::string
CompState::toString() const
{
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < queues.size(); ++i) {
        if (i > 0)
            os << " ";
        os << "q" << i << "=[";
        for (std::size_t j = 0; j < queues[i].size(); ++j) {
            if (j > 0)
                os << ",";
            os << queues[i][j].toString();
        }
        os << "]";
    }
    for (std::size_t i = 0; i < regs.size(); ++i)
        os << " r" << i << "=" << regs[i];
    os << "}";
    return os.str();
}

std::size_t
GraphState::totalTokens() const
{
    std::size_t n = 0;
    for (const CompState& c : comps)
        n += c.totalTokens();
    return n;
}

std::size_t
GraphState::approxBytes() const
{
    std::size_t bytes = sizeof(GraphState);
    for (const CompState& c : comps)
        bytes += c.approxBytes();
    return bytes;
}

std::size_t
GraphState::hash() const
{
    std::size_t seed = 0x9e37;
    for (const CompState& c : comps)
        seed = combineHash(seed, c.hash());
    return seed;
}

std::string
GraphState::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < comps.size(); ++i)
        os << i << ":" << comps[i].toString() << "\n";
    return os.str();
}

}  // namespace graphiti
