#include "semantics/executor.hpp"

namespace graphiti {

bool
Executor::feed(const LowPortId& name, Token token)
{
    std::vector<GraphState> succs =
        mod_->inputStep(state_, name, std::move(token));
    if (succs.empty())
        return false;
    state_ = std::move(succs.front());
    return true;
}

bool
Executor::feedIo(std::uint32_t io, Value value)
{
    return feed(LowPortId::ioPort(io), Token(std::move(value)));
}

std::size_t
Executor::runInternal(std::size_t max_steps)
{
    std::size_t applied = 0;
    while (applied < max_steps) {
        std::vector<GraphState> succs = mod_->internalSteps(state_);
        if (succs.empty())
            break;
        state_ = std::move(succs.front());
        ++applied;
    }
    return applied;
}

std::optional<Token>
Executor::pull(const LowPortId& name)
{
    auto emissions = mod_->outputStep(state_, name);
    if (emissions.empty())
        return std::nullopt;
    state_ = std::move(emissions.front().second);
    return std::move(emissions.front().first);
}

std::optional<Token>
Executor::pullBlocking(const LowPortId& name, std::size_t max_steps)
{
    for (std::size_t i = 0; i <= max_steps; ++i) {
        if (std::optional<Token> t = pull(name))
            return t;
        std::vector<GraphState> succs = mod_->internalSteps(state_);
        if (succs.empty())
            return std::nullopt;
        state_ = std::move(succs.front());
    }
    return std::nullopt;
}

std::optional<Token>
Executor::pullIo(std::uint32_t io, std::size_t max_steps)
{
    return pullBlocking(LowPortId::ioPort(io), max_steps);
}

}  // namespace graphiti
