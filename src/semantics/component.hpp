#ifndef GRAPHITI_SEMANTICS_COMPONENT_HPP
#define GRAPHITI_SEMANTICS_COMPONENT_HPP

/**
 * @file
 * Executable module semantics for the component catalog (section 4.3).
 *
 * A Component is the executable analogue of the paper's semantic
 * object M: it exposes input transition relations (one per input
 * port), output transition relations (one per output port), internal
 * transitions and an initial state. Relations are rendered executable
 * as successor enumerators: given a state (and a token for inputs),
 * each method returns *all* successor states, so nondeterministic
 * components (Merge) return several and disabled transitions return
 * none.
 *
 * Queue capacity: the paper's queues are unbounded. For finite-state
 * refinement checking the environment instantiates components with a
 * finite capacity, making input transitions refuse when full; with
 * capacity kUnbounded the paper's semantics is recovered.
 */

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "semantics/functions.hpp"
#include "semantics/state.hpp"
#include "support/token.hpp"

namespace graphiti {

/** Queue capacity representing the paper's unbounded queues. */
inline constexpr std::size_t kUnbounded =
    std::numeric_limits<std::size_t>::max();

/**
 * Executable semantics of one component type instantiation.
 *
 * Instances are immutable and shared; all mutable data lives in
 * CompState values.
 */
class Component
{
  public:
    explicit Component(std::size_t capacity) : capacity_(capacity) {}
    virtual ~Component() = default;

    virtual std::string name() const = 0;
    virtual int numInputs() const = 0;
    virtual int numOutputs() const = 0;
    virtual CompState initialState() const = 0;

    /**
     * The input transition relation at @p port: all successors of
     * @p state after consuming @p token. Empty when the transition is
     * disabled (queue full under a bounded instantiation).
     */
    virtual std::vector<CompState> acceptInput(const CompState& state,
                                               int port,
                                               const Token& token) const = 0;

    /**
     * The output transition relation at @p port: all (emitted token,
     * successor) pairs. Empty when no output is ready.
     */
    virtual std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const = 0;

    /** Internal transition successors (default: none). */
    virtual std::vector<CompState>
    internalSteps(const CompState& state) const
    {
        (void)state;
        return {};
    }

    std::size_t capacity() const { return capacity_; }

  protected:
    bool
    roomFor(const CompState& state, std::size_t queue) const
    {
        return state.queues[queue].size() < capacity_;
    }

  private:
    std::size_t capacity_;
};

using ComponentPtr = std::shared_ptr<const Component>;

/**
 * Check that @p tokens carry compatible tags (untagged matches any)
 * and return the common tag. Returns false when two differing tags
 * are present.
 */
bool tagsCompatible(const std::vector<const Token*>& tokens,
                    std::optional<Tag>& common);

/** @name Component factories
 * One per catalog entry; parameters mirror the node attributes.
 * @{ */
ComponentPtr makeFork(int num_outputs, std::size_t capacity);
ComponentPtr makeJoin(int num_inputs, std::size_t capacity);
ComponentPtr makeSplit(std::size_t capacity);
ComponentPtr makeBranch(std::size_t capacity);
ComponentPtr makeMux(std::size_t capacity);
ComponentPtr makeMerge(std::size_t capacity);
ComponentPtr makeInit(bool initial_value, std::size_t capacity);
ComponentPtr makeBuffer(std::size_t capacity);
ComponentPtr makeSink(std::size_t capacity);
ComponentPtr makeSource();
ComponentPtr makeConstant(Value value, std::size_t capacity);
ComponentPtr makeOperator(std::string op, std::size_t capacity);
ComponentPtr makePure(std::string fn_name, PureFn fn,
                      std::size_t capacity);
ComponentPtr makeTagger(int num_tags, std::size_t capacity);
ComponentPtr makeLoad(std::string memory, std::size_t capacity);
ComponentPtr makeStore(std::string memory, std::size_t capacity);
/** @} */

}  // namespace graphiti

#endif  // GRAPHITI_SEMANTICS_COMPONENT_HPP
