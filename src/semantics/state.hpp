#ifndef GRAPHITI_SEMANTICS_STATE_HPP
#define GRAPHITI_SEMANTICS_STATE_HPP

/**
 * @file
 * Component and graph states for the denotational semantics.
 *
 * Section 4.3 gives components semantics as transition relations over
 * an internal state built from queues (e.g. the fork's pair of lists).
 * CompState is that state, made concrete: a vector of token queues plus
 * a vector of scalar registers (used by Init's "already produced the
 * initial token" flag and the Tagger's allocation counters). A denoted
 * graph's state (GraphState) is the product of its components' states,
 * exactly as the product combinator of section 4.5 prescribes.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/token.hpp"

namespace graphiti {

/**
 * A FIFO of tokens with an O(1) amortized pop.
 *
 * The semantics hot path copies a CompState per successor and then
 * dequeues from the front; erasing the front of a std::vector made
 * every dequeue O(n). TokenQueue keeps the same storage but tracks a
 * head index: popFront() bumps the head, and the consumed prefix is
 * compacted away only when it grows past a small bound — so the
 * physical layout may differ between two logically equal queues.
 *
 * Every observable operation (equality, hash, toString, size,
 * iteration, approxBytes) is defined over the *logical* contents, so
 * the head index is invisible to interning, fingerprints and
 * counterexample text — the property the encoding-equivalence tests
 * pin down.
 */
class TokenQueue
{
  public:
    TokenQueue() = default;

    /** Logical number of queued tokens. */
    std::size_t size() const { return items_.size() - head_; }
    bool empty() const { return head_ == items_.size(); }

    /** The front (next to dequeue); queue must be nonempty. */
    const Token& front() const { return items_[head_]; }

    /** Logical indexing from the front. */
    const Token& operator[](std::size_t i) const
    {
        return items_[head_ + i];
    }

    /** Iteration over the logical contents. */
    const Token* begin() const { return items_.data() + head_; }
    const Token* end() const { return items_.data() + items_.size(); }

    void push_back(Token t) { items_.push_back(std::move(t)); }

    /** Remove the front in O(1) amortized; queue must be nonempty. */
    void
    popFront()
    {
        ++head_;
        if (head_ == items_.size()) {
            items_.clear();
            head_ = 0;
        } else if (head_ >= kCompactAt && head_ * 2 >= items_.size()) {
            compact();
        }
    }

    /** Remove the token at logical index @p i (the Untagger's
     * out-of-order completion pick). */
    void
    eraseAt(std::size_t i)
    {
        items_.erase(items_.begin() +
                     static_cast<std::ptrdiff_t>(head_ + i));
    }

    /** Logical equality: head offsets never matter. */
    bool
    operator==(const TokenQueue& other) const
    {
        if (size() != other.size())
            return false;
        for (std::size_t i = 0; i < size(); ++i) {
            if (!((*this)[i] == other[i]))
                return false;
        }
        return true;
    }

  private:
    /** Consumed-prefix bound before compaction kicks in; keeps the
     * slack small without compacting on every pop. */
    static constexpr std::size_t kCompactAt = 16;

    void
    compact()
    {
        items_.erase(items_.begin(),
                     items_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
    }

    std::vector<Token> items_;
    std::size_t head_ = 0;
};

/** The state of one component instance: queues plus scalar registers. */
struct CompState
{
    /** FIFO queues; logical index 0 is the front (next to dequeue). */
    std::vector<TokenQueue> queues;
    /** Scalar registers (counters, flags). */
    std::vector<std::int64_t> regs;

    bool operator==(const CompState&) const = default;

    /** Size-based heap estimate in bytes: a pure function of logical
     * state content (no capacity or head-index slack), so resource
     * accounting stays deterministic across runs and thread counts. */
    std::size_t approxBytes() const;

    /** Enqueue @p t on queue @p q. */
    void
    enq(std::size_t q, Token t)
    {
        queues[q].push_back(std::move(t));
    }

    /** The front of queue @p q (must be nonempty). */
    const Token&
    first(std::size_t q) const
    {
        return queues[q].front();
    }

    /** Remove the front of queue @p q (must be nonempty); O(1)
     * amortized via the TokenQueue head index. */
    void
    deq(std::size_t q)
    {
        queues[q].popFront();
    }

    bool
    empty(std::size_t q) const
    {
        return queues[q].empty();
    }

    /** Total number of queued tokens across all queues. */
    std::size_t totalTokens() const;

    std::size_t hash() const;
    std::string toString() const;
};

/** The state of a denoted graph: one CompState per base component. */
struct GraphState
{
    std::vector<CompState> comps;

    bool operator==(const GraphState&) const = default;

    std::size_t totalTokens() const;
    /** Deterministic size-based byte estimate (see CompState). */
    std::size_t approxBytes() const;
    std::size_t hash() const;
    std::string toString() const;
};

/** Hash functor so states can key unordered containers. */
struct GraphStateHash
{
    std::size_t operator()(const GraphState& s) const { return s.hash(); }
};

}  // namespace graphiti

#endif  // GRAPHITI_SEMANTICS_STATE_HPP
