#ifndef GRAPHITI_SEMANTICS_STATE_HPP
#define GRAPHITI_SEMANTICS_STATE_HPP

/**
 * @file
 * Component and graph states for the denotational semantics.
 *
 * Section 4.3 gives components semantics as transition relations over
 * an internal state built from queues (e.g. the fork's pair of lists).
 * CompState is that state, made concrete: a vector of token queues plus
 * a vector of scalar registers (used by Init's "already produced the
 * initial token" flag and the Tagger's allocation counters). A denoted
 * graph's state (GraphState) is the product of its components' states,
 * exactly as the product combinator of section 4.5 prescribes.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/token.hpp"

namespace graphiti {

/** The state of one component instance: queues plus scalar registers. */
struct CompState
{
    /** FIFO queues; index 0 is the front (next to dequeue). */
    std::vector<std::vector<Token>> queues;
    /** Scalar registers (counters, flags). */
    std::vector<std::int64_t> regs;

    bool operator==(const CompState&) const = default;

    /** Size-based heap estimate in bytes: a pure function of state
     * content (no capacity slack), so resource accounting stays
     * deterministic across runs and thread counts. */
    std::size_t approxBytes() const;

    /** Enqueue @p t on queue @p q. */
    void
    enq(std::size_t q, Token t)
    {
        queues[q].push_back(std::move(t));
    }

    /** The front of queue @p q (must be nonempty). */
    const Token&
    first(std::size_t q) const
    {
        return queues[q].front();
    }

    /** Remove the front of queue @p q (must be nonempty). */
    void
    deq(std::size_t q)
    {
        queues[q].erase(queues[q].begin());
    }

    bool
    empty(std::size_t q) const
    {
        return queues[q].empty();
    }

    /** Total number of queued tokens across all queues. */
    std::size_t totalTokens() const;

    std::size_t hash() const;
    std::string toString() const;
};

/** The state of a denoted graph: one CompState per base component. */
struct GraphState
{
    std::vector<CompState> comps;

    bool operator==(const GraphState&) const = default;

    std::size_t totalTokens() const;
    /** Deterministic size-based byte estimate (see CompState). */
    std::size_t approxBytes() const;
    std::size_t hash() const;
    std::string toString() const;
};

/** Hash functor so states can key unordered containers. */
struct GraphStateHash
{
    std::size_t operator()(const GraphState& s) const { return s.hash(); }
};

}  // namespace graphiti

#endif  // GRAPHITI_SEMANTICS_STATE_HPP
