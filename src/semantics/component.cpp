#include "semantics/component.hpp"

#include "graph/signatures.hpp"

namespace graphiti {

bool
tagsCompatible(const std::vector<const Token*>& tokens,
               std::optional<Tag>& common)
{
    common.reset();
    for (const Token* t : tokens) {
        if (!t->tag)
            continue;
        if (common && *common != *t->tag)
            return false;
        common = t->tag;
    }
    return true;
}

namespace {

CompState
emptyState(std::size_t num_queues, std::size_t num_regs = 0)
{
    CompState s;
    s.queues.resize(num_queues);
    s.regs.resize(num_regs, 0);
    return s;
}

/**
 * Fork: one queue per output; an input enqueues the token on all of
 * them (the paper's fork.in0 with enq applied to every list).
 */
class ForkComponent : public Component
{
  public:
    ForkComponent(int num_outputs, std::size_t capacity)
        : Component(capacity), num_outputs_(num_outputs)
    {
    }

    std::string name() const override { return "fork"; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return num_outputs_; }
    CompState initialState() const override
    {
        return emptyState(num_outputs_);
    }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        for (int q = 0; q < num_outputs_; ++q)
            if (!roomFor(state, q))
                return {};
        CompState next = state;
        for (int q = 0; q < num_outputs_; ++q)
            next.enq(q, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        if (state.empty(port))
            return {};
        CompState next = state;
        Token out = next.first(port);
        next.deq(port);
        return {{std::move(out), std::move(next)}};
    }

  private:
    int num_outputs_;
};

/**
 * Join: synchronizes its inputs into a (right-nested) tuple. Tags of
 * the joined tokens must agree.
 */
class JoinComponent : public Component
{
  public:
    JoinComponent(int num_inputs, std::size_t capacity)
        : Component(capacity), num_inputs_(num_inputs)
    {
    }

    std::string name() const override { return "join"; }
    int numInputs() const override { return num_inputs_; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override
    {
        return emptyState(num_inputs_);
    }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        if (!roomFor(state, port))
            return {};
        CompState next = state;
        next.enq(port, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        std::vector<const Token*> fronts;
        for (int q = 0; q < num_inputs_; ++q) {
            if (state.empty(q))
                return {};
            fronts.push_back(&state.first(q));
        }
        std::optional<Tag> tag;
        if (!tagsCompatible(fronts, tag))
            return {};
        // Right-nested pairing keeps the Split/Join algebra a pure
        // pair algebra: join(a, b, c) = (a, (b, c)).
        Value v = fronts.back()->value;
        for (int q = num_inputs_ - 2; q >= 0; --q)
            v = Value::tuple(fronts[q]->value, std::move(v));
        CompState next = state;
        for (int q = 0; q < num_inputs_; ++q)
            next.deq(q);
        Token out(std::move(v));
        out.tag = tag;
        return {{std::move(out), std::move(next)}};
    }

  private:
    int num_inputs_;
};

/**
 * Split: takes a pair apart; an internal transition stages the two
 * halves so the outputs can be consumed independently.
 */
class SplitComponent : public Component
{
  public:
    explicit SplitComponent(std::size_t capacity) : Component(capacity) {}

    std::string name() const override { return "split"; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return 2; }
    CompState initialState() const override { return emptyState(3); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        if (!roomFor(state, 0) || !token.value.isTuple() ||
            token.value.asTuple().size() != 2)
            return {};
        CompState next = state;
        next.enq(0, token);
        return {std::move(next)};
    }

    std::vector<CompState>
    internalSteps(const CompState& state) const override
    {
        if (state.empty(0) || !roomFor(state, 1) || !roomFor(state, 2))
            return {};
        const Token& t = state.first(0);
        const ValueTuple& parts = t.value.asTuple();
        CompState next = state;
        Token left(parts[0]);
        Token right(parts[1]);
        left.tag = t.tag;
        right.tag = t.tag;
        next.deq(0);
        next.enq(1, std::move(left));
        next.enq(2, std::move(right));
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        int q = port + 1;
        if (state.empty(q))
            return {};
        CompState next = state;
        Token out = next.first(q);
        next.deq(q);
        return {{std::move(out), std::move(next)}};
    }
};

/**
 * Branch: passes the data token to out0 when the condition is true,
 * out1 when false (Table 1).
 */
class BranchComponent : public Component
{
  public:
    explicit BranchComponent(std::size_t capacity) : Component(capacity) {}

    std::string name() const override { return "branch"; }
    int numInputs() const override { return 2; }
    int numOutputs() const override { return 2; }
    CompState initialState() const override { return emptyState(2); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        if (!roomFor(state, port))
            return {};
        CompState next = state;
        next.enq(port, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        if (state.empty(0) || state.empty(1))
            return {};
        const Token& data = state.first(0);
        const Token& cond = state.first(1);
        std::optional<Tag> tag;
        if (!tagsCompatible({&data, &cond}, tag))
            return {};
        bool want_true = port == 0;
        if (cond.value.asBool() != want_true)
            return {};
        CompState next = state;
        Token out = data;
        out.tag = tag;
        next.deq(0);
        next.deq(1);
        return {{std::move(out), std::move(next)}};
    }
};

/**
 * Mux: emits the in1 (true) or in2 (false) token selected by the
 * condition on in0 (Table 1). Queues: 0 = condition, 1 = true data,
 * 2 = false data.
 */
class MuxComponent : public Component
{
  public:
    explicit MuxComponent(std::size_t capacity) : Component(capacity) {}

    std::string name() const override { return "mux"; }
    int numInputs() const override { return 3; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(3); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        if (!roomFor(state, port))
            return {};
        CompState next = state;
        next.enq(port, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        if (state.empty(0))
            return {};
        const Token& cond = state.first(0);
        int sel = cond.value.asBool() ? 1 : 2;
        if (state.empty(sel))
            return {};
        CompState next = state;
        Token out = next.first(sel);
        next.deq(0);
        next.deq(sel);
        return {{std::move(out), std::move(next)}};
    }
};

/**
 * Merge: emits the first available token from either input; when both
 * queues hold tokens the choice is nondeterministic (the *local
 * nondeterminism* of section 1). Queue 2 stages nothing; both orders
 * are returned as distinct successors.
 */
class MergeComponent : public Component
{
  public:
    explicit MergeComponent(std::size_t capacity) : Component(capacity) {}

    std::string name() const override { return "merge"; }
    int numInputs() const override { return 2; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(2); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        if (!roomFor(state, port))
            return {};
        CompState next = state;
        next.enq(port, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        std::vector<std::pair<Token, CompState>> out;
        for (int q = 0; q < 2; ++q) {
            if (state.empty(q))
                continue;
            CompState next = state;
            Token t = next.first(q);
            next.deq(q);
            out.emplace_back(std::move(t), std::move(next));
        }
        return out;
    }
};

/**
 * Init: produces one initial boolean token, then behaves like a
 * queue (Table 1). regs[0] records whether the initial token has been
 * produced.
 */
class InitComponent : public Component
{
  public:
    InitComponent(bool initial_value, std::size_t capacity)
        : Component(capacity), initial_value_(initial_value)
    {
    }

    std::string name() const override { return "init"; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(1, 1); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        if (!roomFor(state, 0))
            return {};
        CompState next = state;
        next.enq(0, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        if (state.regs[0] == 0) {
            CompState next = state;
            next.regs[0] = 1;
            return {{Token(Value(initial_value_)), std::move(next)}};
        }
        if (state.empty(0))
            return {};
        CompState next = state;
        Token out = next.first(0);
        next.deq(0);
        return {{std::move(out), std::move(next)}};
    }

  private:
    bool initial_value_;
};

/** Buffer: a plain FIFO queue. */
class BufferComponent : public Component
{
  public:
    explicit BufferComponent(std::size_t capacity) : Component(capacity) {}

    std::string name() const override { return "buffer"; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(1); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        if (!roomFor(state, 0))
            return {};
        CompState next = state;
        next.enq(0, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        if (state.empty(0))
            return {};
        CompState next = state;
        Token out = next.first(0);
        next.deq(0);
        return {{std::move(out), std::move(next)}};
    }
};

/** Sink: consumes and discards tokens; stateless. */
class SinkComponent : public Component
{
  public:
    explicit SinkComponent(std::size_t capacity) : Component(capacity) {}

    std::string name() const override { return "sink"; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return 0; }
    CompState initialState() const override { return emptyState(0); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        (void)token;
        return {state};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)state;
        (void)port;
        return {};
    }
};

/** Source: an infinite supply of control tokens; stateless. */
class SourceComponent : public Component
{
  public:
    SourceComponent() : Component(kUnbounded) {}

    std::string name() const override { return "source"; }
    int numInputs() const override { return 0; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(0); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)state;
        (void)port;
        (void)token;
        return {};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        return {{Token(Value()), state}};
    }
};

/** Constant: each control token on in0 releases one copy of value. */
class ConstantComponent : public Component
{
  public:
    ConstantComponent(Value value, std::size_t capacity)
        : Component(capacity), value_(std::move(value))
    {
    }

    std::string name() const override { return "constant"; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(1); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        if (!roomFor(state, 0))
            return {};
        CompState next = state;
        next.enq(0, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        if (state.empty(0))
            return {};
        CompState next = state;
        Token out(value_);
        out.tag = next.first(0).tag;
        next.deq(0);
        return {{std::move(out), std::move(next)}};
    }

  private:
    Value value_;
};

/**
 * Operator: applies its op at the output transition, exactly like the
 * paper's mod.out0 relation; inputs queue independently.
 */
class OperatorComponent : public Component
{
  public:
    OperatorComponent(std::string op, std::size_t capacity)
        : Component(capacity), op_(std::move(op)),
          arity_(operatorArity(op_))
    {
    }

    std::string name() const override { return "operator:" + op_; }
    int numInputs() const override { return arity_; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(arity_); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        if (!roomFor(state, port))
            return {};
        CompState next = state;
        next.enq(port, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        std::vector<const Token*> fronts;
        std::vector<Value> args;
        for (int q = 0; q < arity_; ++q) {
            if (state.empty(q))
                return {};
            fronts.push_back(&state.first(q));
            args.push_back(state.first(q).value);
        }
        std::optional<Tag> tag;
        if (!tagsCompatible(fronts, tag))
            return {};
        Result<Value> result = evalOperator(op_, args);
        if (!result.ok())
            return {};  // e.g. division by zero: the operator is stuck
        CompState next = state;
        for (int q = 0; q < arity_; ++q)
            next.deq(q);
        Token out(result.take());
        out.tag = tag;
        return {{std::move(out), std::move(next)}};
    }

  private:
    std::string op_;
    int arity_;
};

/** Pure: applies a registered unary function; tags ride along. */
class PureComponent : public Component
{
  public:
    PureComponent(std::string fn_name, PureFn fn, std::size_t capacity)
        : Component(capacity), fn_name_(std::move(fn_name)),
          fn_(std::move(fn))
    {
    }

    std::string name() const override { return "pure:" + fn_name_; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(1); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        if (!roomFor(state, 0))
            return {};
        CompState next = state;
        next.enq(0, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        if (state.empty(0))
            return {};
        CompState next = state;
        Token out(fn_(next.first(0).value));
        out.tag = next.first(0).tag;
        next.deq(0);
        return {{std::move(out), std::move(next)}};
    }

  private:
    std::string fn_name_;
    PureFn fn_;
};

/**
 * Tagger/Untagger: the combined reorder component of Table 1.
 *
 * Queues: 0 = fresh (untagged) inputs, 1 = completions returned from
 * the loop exit, 2 = tagged tokens staged for the loop entry.
 * regs[0] = number of tags allocated so far, regs[1] = number
 * committed. Tags are reused round-robin; in-flight count is bounded
 * by num_tags. out1 emits completions strictly in allocation order,
 * which is the paper's *in-order* invariant (section 5.2).
 */
class TaggerComponent : public Component
{
  public:
    TaggerComponent(int num_tags, std::size_t capacity)
        : Component(capacity), num_tags_(num_tags)
    {
    }

    std::string name() const override { return "tagger"; }
    int numInputs() const override { return 2; }
    int numOutputs() const override { return 2; }
    CompState initialState() const override { return emptyState(3, 2); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        if (!roomFor(state, port))
            return {};
        if (port == 1 && !token.tag)
            return {};  // returning tokens must carry their tag
        CompState next = state;
        next.enq(port, token);
        return {std::move(next)};
    }

    std::vector<CompState>
    internalSteps(const CompState& state) const override
    {
        // Allocate a tag for the oldest fresh input, if one is free.
        if (state.empty(0) || !roomFor(state, 2))
            return {};
        if (state.regs[0] - state.regs[1] >= num_tags_)
            return {};
        CompState next = state;
        Token tagged = next.first(0);
        tagged.tag = static_cast<Tag>(next.regs[0] % num_tags_);
        next.deq(0);
        next.enq(2, std::move(tagged));
        next.regs[0] += 1;
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        if (port == 0) {
            if (state.empty(2))
                return {};
            CompState next = state;
            Token out = next.first(2);
            next.deq(2);
            return {{std::move(out), std::move(next)}};
        }
        // out1: the completion carrying the oldest outstanding tag.
        if (state.regs[1] >= state.regs[0])
            return {};
        Tag wanted = static_cast<Tag>(state.regs[1] % num_tags_);
        for (std::size_t i = 0; i < state.queues[1].size(); ++i) {
            if (state.queues[1][i].tag == wanted) {
                CompState next = state;
                Token out = next.queues[1][i];
                out.tag.reset();
                next.queues[1].eraseAt(i);
                next.regs[1] += 1;
                return {{std::move(out), std::move(next)}};
            }
        }
        return {};
    }

  private:
    int num_tags_;
};

/** Load: a read-only memory lookup, functionally a pure map. */
class LoadComponent : public Component
{
  public:
    LoadComponent(std::string memory, std::size_t capacity)
        : Component(capacity), memory_(std::move(memory))
    {
    }

    std::string name() const override { return "load:" + memory_; }
    int numInputs() const override { return 1; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(1); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        (void)port;
        if (!roomFor(state, 0))
            return {};
        CompState next = state;
        next.enq(0, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        if (state.empty(0))
            return {};
        // At the semantics level memory is immutable; the lookup is
        // the identity on the address so refinement checks treat the
        // load as an uninterpreted pure map. The cycle simulator
        // (sim/) interprets loads against real arrays.
        CompState next = state;
        Token out = next.first(0);
        next.deq(0);
        return {{std::move(out), std::move(next)}};
    }

  private:
    std::string memory_;
};

/**
 * Store: consumes (address, data) and emits the pair as its done
 * token, making the memory side effect externally observable. This is
 * what makes the out-of-order rewrite *unsound* on loops with stores
 * (the bicg case in section 6.2): reordered stores produce a
 * different observable sequence.
 */
class StoreComponent : public Component
{
  public:
    StoreComponent(std::string memory, std::size_t capacity)
        : Component(capacity), memory_(std::move(memory))
    {
    }

    std::string name() const override { return "store:" + memory_; }
    int numInputs() const override { return 2; }
    int numOutputs() const override { return 1; }
    CompState initialState() const override { return emptyState(2); }

    std::vector<CompState>
    acceptInput(const CompState& state, int port,
                const Token& token) const override
    {
        if (!roomFor(state, port))
            return {};
        CompState next = state;
        next.enq(port, token);
        return {std::move(next)};
    }

    std::vector<std::pair<Token, CompState>>
    emitOutput(const CompState& state, int port) const override
    {
        (void)port;
        if (state.empty(0) || state.empty(1))
            return {};
        const Token& addr = state.first(0);
        const Token& data = state.first(1);
        std::optional<Tag> tag;
        if (!tagsCompatible({&addr, &data}, tag))
            return {};
        CompState next = state;
        Token out(Value::tuple(addr.value, data.value));
        out.tag = tag;
        next.deq(0);
        next.deq(1);
        return {{std::move(out), std::move(next)}};
    }

  private:
    std::string memory_;
};

}  // namespace

ComponentPtr
makeFork(int num_outputs, std::size_t capacity)
{
    return std::make_shared<ForkComponent>(num_outputs, capacity);
}

ComponentPtr
makeJoin(int num_inputs, std::size_t capacity)
{
    return std::make_shared<JoinComponent>(num_inputs, capacity);
}

ComponentPtr
makeSplit(std::size_t capacity)
{
    return std::make_shared<SplitComponent>(capacity);
}

ComponentPtr
makeBranch(std::size_t capacity)
{
    return std::make_shared<BranchComponent>(capacity);
}

ComponentPtr
makeMux(std::size_t capacity)
{
    return std::make_shared<MuxComponent>(capacity);
}

ComponentPtr
makeMerge(std::size_t capacity)
{
    return std::make_shared<MergeComponent>(capacity);
}

ComponentPtr
makeInit(bool initial_value, std::size_t capacity)
{
    return std::make_shared<InitComponent>(initial_value, capacity);
}

ComponentPtr
makeBuffer(std::size_t capacity)
{
    return std::make_shared<BufferComponent>(capacity);
}

ComponentPtr
makeSink(std::size_t capacity)
{
    return std::make_shared<SinkComponent>(capacity);
}

ComponentPtr
makeSource()
{
    return std::make_shared<SourceComponent>();
}

ComponentPtr
makeConstant(Value value, std::size_t capacity)
{
    return std::make_shared<ConstantComponent>(std::move(value), capacity);
}

ComponentPtr
makeOperator(std::string op, std::size_t capacity)
{
    return std::make_shared<OperatorComponent>(std::move(op), capacity);
}

ComponentPtr
makePure(std::string fn_name, PureFn fn, std::size_t capacity)
{
    return std::make_shared<PureComponent>(std::move(fn_name),
                                           std::move(fn), capacity);
}

ComponentPtr
makeTagger(int num_tags, std::size_t capacity)
{
    return std::make_shared<TaggerComponent>(num_tags, capacity);
}

ComponentPtr
makeLoad(std::string memory, std::size_t capacity)
{
    return std::make_shared<LoadComponent>(std::move(memory), capacity);
}

ComponentPtr
makeStore(std::string memory, std::size_t capacity)
{
    return std::make_shared<StoreComponent>(std::move(memory), capacity);
}

}  // namespace graphiti
