#include "semantics/environment.hpp"

#include <sstream>

#include "graph/signatures.hpp"

namespace graphiti {

namespace {

/** The standard pure functions every environment provides: the tuple
 * plumbing the figure 3c/5d rewrites introduce. */
void
registerStandardFns(FnRegistry& fns)
{
    fns.add("id", [](const Value& v) { return v; });
    fns.add("dup", [](const Value& v) { return Value::tuple(v, v); });
    fns.add("fst", [](const Value& v) { return v.asTuple().at(0); });
    fns.add("snd", [](const Value& v) { return v.asTuple().at(1); });
    fns.add("swap", [](const Value& v) {
        const ValueTuple& t = v.asTuple();
        return Value::tuple(t.at(1), t.at(0));
    });
}

}  // namespace

Environment::Environment(std::size_t capacity)
    : capacity_(capacity), functions_(std::make_shared<FnRegistry>())
{
    registerStandardFns(*functions_);
}

Environment::Environment(std::size_t capacity,
                         std::shared_ptr<FnRegistry> functions)
    : capacity_(capacity), functions_(std::move(functions))
{
    registerStandardFns(*functions_);
}

Result<Value>
parseConstant(const std::string& text)
{
    if (text == "true")
        return Value(true);
    if (text == "false")
        return Value(false);
    if (text == "unit" || text.empty())
        return Value();
    if (text.find('.') != std::string::npos ||
        text.find('e') != std::string::npos) {
        try {
            return Value(std::stod(text));
        } catch (const std::exception&) {
            return err("malformed constant: '" + text + "'");
        }
    }
    try {
        return Value(static_cast<std::int64_t>(std::stoll(text)));
    } catch (const std::exception&) {
        return err("malformed constant: '" + text + "'");
    }
}

Result<ComponentPtr>
Environment::lookup(const std::string& type, const AttrMap& attrs) const
{
    std::ostringstream key;
    key << type;
    for (const auto& [k, v] : attrs)
        key << ";" << k << "=" << v;
    auto it = cache_.find(key.str());
    if (it != cache_.end())
        return it->second;

    ComponentPtr comp;
    if (type == "fork") {
        comp = makeFork(attrInt(attrs, "out", 2), capacity_);
    } else if (type == "join") {
        comp = makeJoin(attrInt(attrs, "in", 2), capacity_);
    } else if (type == "split") {
        comp = makeSplit(capacity_);
    } else if (type == "branch") {
        comp = makeBranch(capacity_);
    } else if (type == "mux") {
        comp = makeMux(capacity_);
    } else if (type == "merge") {
        comp = makeMerge(capacity_);
    } else if (type == "init") {
        comp = makeInit(attrStr(attrs, "value", "false") == "true",
                        capacity_);
    } else if (type == "buffer") {
        comp = makeBuffer(capacity_);
    } else if (type == "sink") {
        comp = makeSink(capacity_);
    } else if (type == "source") {
        comp = makeSource();
    } else if (type == "constant") {
        Result<Value> value = parseConstant(attrStr(attrs, "value", "0"));
        if (!value.ok())
            return value.error().context("constant node");
        comp = makeConstant(value.take(), capacity_);
    } else if (type == "operator") {
        std::string op = attrStr(attrs, "op", "");
        if (operatorArity(op) < 0)
            return err("operator node with unknown op '" + op + "'");
        comp = makeOperator(op, capacity_);
    } else if (type == "pure") {
        std::string fn_name = attrStr(attrs, "fn", "");
        const PureFn* fn = functions_->find(fn_name);
        if (fn == nullptr)
            return err("pure node references unregistered fn '" +
                       fn_name + "'");
        comp = makePure(fn_name, *fn, capacity_);
    } else if (type == "tagger") {
        int tags = attrInt(attrs, "tags", 4);
        if (tags <= 0)
            return err("tagger needs a positive tag count");
        comp = makeTagger(tags, capacity_);
    } else if (type == "load") {
        comp = makeLoad(attrStr(attrs, "memory", "mem"), capacity_);
    } else if (type == "store") {
        comp = makeStore(attrStr(attrs, "memory", "mem"), capacity_);
    } else {
        return err("environment has no module for type '" + type + "'");
    }

    cache_[key.str()] = comp;
    return comp;
}

}  // namespace graphiti
