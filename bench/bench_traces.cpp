/**
 * @file
 * Regenerates figure 2d/2e: execution traces of the modulo unit in
 * the in-order and out-of-order GCD circuits over three loop
 * executions, showing that only the out-of-order circuit keeps the
 * pipelined modulo busy.
 */

#include <cstdio>
#include <map>

#include "bench_circuits/gcd.hpp"
#include "flows.hpp"
#include "obs/critpath.hpp"
#include "obs/scope.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

namespace {

using namespace graphiti;

std::string
findModulo(const ExprHigh& g)
{
    for (const NodeDecl& n : g.nodes())
        if (n.type == "operator" && n.attrs.count("op") > 0 &&
            n.attrs.at("op") == "mod")
            return n.name;
    return "";
}

struct TraceResult
{
    std::size_t cycles = 0;
    std::vector<std::size_t> accepts;  // cycles the modulo accepted
#if GRAPHITI_OBS_ENABLED
    /** Token-provenance view of the same run (docs/profiling.md). */
    obs::CritPathReport profile;
#endif
};

TraceResult
run(const ExprHigh& g, std::shared_ptr<FnRegistry> registry)
{
    sim::SimConfig config;
    config.trace_nodes = {findModulo(g)};
#if GRAPHITI_OBS_ENABLED
    auto scope = std::make_shared<obs::Scope>();
    auto tracker = std::make_shared<obs::ProvenanceTracker>();
    scope->attachProvenance(tracker);
    config.obs = scope;
#endif
    sim::Simulator simulator =
        sim::Simulator::build(g, registry, config).take();
    const std::vector<std::pair<int, int>> pairs = {
        {1071, 462}, {987, 610}, {864, 528}};
    std::vector<Token> as, bs;
    for (auto [a, b] : pairs) {
        as.emplace_back(Value(a));
        bs.emplace_back(Value(b));
    }
    auto result = simulator.run({as, bs}, pairs.size());
    TraceResult out;
    if (!result.ok()) {
        std::fprintf(stderr, "trace run failed: %s\n",
                     result.error().message.c_str());
        return out;
    }
    out.cycles = result.value().cycles;
    for (const sim::TraceEvent& ev : result.value().trace)
        if (ev.detail == "accept")
            out.accepts.push_back(ev.cycle);
#if GRAPHITI_OBS_ENABLED
    out.profile = obs::analyzeCriticalPaths(tracker->log());
#endif
    return out;
}

void
printTimeline(const char* label, const TraceResult& trace)
{
    std::printf("%s: %zu cycles, %zu modulo operations\n", label,
                trace.cycles, trace.accepts.size());
    // A compressed busy-timeline: one character per 2 cycles.
    std::string line(trace.cycles / 2 + 1, '.');
    for (std::size_t cycle : trace.accepts)
        line[cycle / 2] = '#';
    for (std::size_t at = 0; at < line.size(); at += 76)
        std::printf("  %s\n", line.substr(at, 76).c_str());
    // Inter-accept gaps characterize pipelining (figure 2d vs 2e).
    std::map<std::size_t, int> gap_histogram;
    for (std::size_t i = 1; i < trace.accepts.size(); ++i)
        ++gap_histogram[trace.accepts[i] - trace.accepts[i - 1]];
    std::printf("  accept-to-accept gaps:");
    for (auto [gap, count] : gap_histogram)
        std::printf(" %zux%d", gap, count);
    std::printf("\n\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = bench::jsonPathFromArgs(argc, argv);
    bench::JsonReport report("bench_traces");
    auto wall_start = std::chrono::steady_clock::now();

    std::printf("Figure 2d/2e: modulo-unit activity for three GCD "
                "streams ('#' = modulo accepts operands)\n\n");

    ExprHigh in_order = circuits::buildGcdInOrder();
    Environment env;
    auto transformed = runOooPipeline(in_order, env,
                                      {.num_tags = 8, .reexpand = true});
    if (!transformed.ok()) {
        std::fprintf(stderr, "pipeline failed: %s\n",
                     transformed.error().message.c_str());
        return 1;
    }

    TraceResult io = run(in_order, env.functionsPtr());
    TraceResult ooo = run(transformed.value().graph, env.functionsPtr());
    printTimeline("figure 2d (in-order: modulo idles between "
                  "iterations)",
                  io);
    printTimeline("figure 2e (out-of-order: modulo pipeline stays "
                  "busy)",
                  ooo);
    std::printf("speedup: %.2fx\n",
                static_cast<double>(io.cycles) /
                    static_cast<double>(ooo.cycles));

    auto variant = [](const TraceResult& t) {
        obs::json::Value v{obs::json::Object{}};
        v.set("cycles", t.cycles);
        v.set("modulo_accepts", t.accepts.size());
#if GRAPHITI_OBS_ENABLED
        // The figure-2 story, quantified: where each token's cycles
        // went, and whether loop iterations completed out of order.
        v.set("attribution", t.profile.totals.toJson());
        v.set("reorder", t.profile.reorder.toJson());
        v.set("reorder_degenerate", t.profile.reorder.degenerate());
#endif
        return v;
    };
    report.set("in_order", variant(io));
    report.set("out_of_order", variant(ooo));
    report.phase("total", std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wall_start)
                              .count());
    return report.writeIfRequested(json_path) ? 0 : 1;
}
