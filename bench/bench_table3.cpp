/**
 * @file
 * Regenerates table 3 of the paper: LUT, FF and DSP usage of DF-IO,
 * DF-OoO, GRAPHITI and Vericert on the six benchmarks, plus
 * geometric means. The tagged flows cost more LUTs/FFs (tag bits,
 * Tagger completion buffers, extra synchronization); matvec's 50 tags
 * blow up its FF count; Vericert's shared-FU design is smallest.
 */

#include <cmath>
#include <cstdio>

#include "flows.hpp"

namespace {

double
geomean(const std::vector<double>& xs)
{
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = graphiti::bench::jsonPathFromArgs(argc, argv);
    graphiti::bench::JsonReport report("bench_table3");
    auto wall_start = std::chrono::steady_clock::now();

    std::printf("Table 3: area (LUT / FF / DSP)\n");
    std::printf("flows: DF-IO | DF-OoO | GRAPHITI | Vericert\n\n");
    std::printf("%-12s | %27s | %27s | %23s\n", "benchmark", "LUT count",
                "FF count", "DSP count");
    std::printf("%-12s | %6s %6s %6s %6s | %6s %6s %6s %6s | %5s %5s "
                "%5s %5s\n",
                "", "IO", "OoO", "GRA", "Ver", "IO", "OoO", "GRA", "Ver",
                "IO", "OoO", "GRA", "Ver");

    std::vector<std::vector<double>> lut(4), ff(4), dsp(4);
    for (const std::string& name : graphiti::circuits::benchmarkNames()) {
        graphiti::bench::BenchmarkMetrics m =
            graphiti::bench::evaluateBenchmark(name);
        report.benchmark(m);
        const graphiti::bench::FlowMetrics* flows[4] = {
            &m.df_io, &m.df_ooo, &m.graphiti, &m.vericert};
        std::printf("%-12s | %6d %6d %6d %6d | %6d %6d %6d %6d | %5d "
                    "%5d %5d %5d\n",
                    name.c_str(), flows[0]->area.lut, flows[1]->area.lut,
                    flows[2]->area.lut, flows[3]->area.lut,
                    flows[0]->area.ff, flows[1]->area.ff,
                    flows[2]->area.ff, flows[3]->area.ff,
                    flows[0]->area.dsp, flows[1]->area.dsp,
                    flows[2]->area.dsp, flows[3]->area.dsp);
        for (int f = 0; f < 4; ++f) {
            lut[f].push_back(flows[f]->area.lut);
            ff[f].push_back(flows[f]->area.ff);
            dsp[f].push_back(flows[f]->area.dsp);
        }
    }
    std::printf("%-12s | %6.0f %6.0f %6.0f %6.0f | %6.0f %6.0f %6.0f "
                "%6.0f | %5.1f %5.1f %5.1f %5.1f\n",
                "geomean", geomean(lut[0]), geomean(lut[1]),
                geomean(lut[2]), geomean(lut[3]), geomean(ff[0]),
                geomean(ff[1]), geomean(ff[2]), geomean(ff[3]),
                geomean(dsp[0]), geomean(dsp[1]), geomean(dsp[2]),
                geomean(dsp[3]));
    report.phase("total", std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wall_start)
                              .count());
    return report.writeIfRequested(json_path) ? 0 : 1;
}
