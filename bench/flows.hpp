#ifndef GRAPHITI_BENCH_FLOWS_HPP
#define GRAPHITI_BENCH_FLOWS_HPP

/**
 * @file
 * Shared evaluation harness for the table/figure benches: build and
 * measure all four flows of section 6 on one benchmark.
 *
 *  - DF-IO:    the untagged input circuit (Elakhras et al. [21]);
 *  - DF-OoO:   the unverified out-of-order flow (Elakhras et al.
 *              [22]) — reproduced by transforming the benchmark's
 *              df_ooo_input (for bicg, the store-suppressed variant
 *              the buggy flow effectively transformed);
 *  - GRAPHITI: the verified pipeline on the true circuit (refuses
 *              bicg);
 *  - Vericert: the statically scheduled baseline.
 */

#include <chrono>
#include <cstring>
#include <iostream>

#include "arch/area_timing.hpp"
#include "bench_circuits/benchmarks.hpp"
#include "obs/json.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"
#include "static_hls/static_hls.hpp"

namespace graphiti::bench {

/** Metrics of one flow on one benchmark. */
struct FlowMetrics
{
    std::size_t cycles = 0;
    double clock_period_ns = 0.0;
    double exec_time_ns = 0.0;
    arch::AreaReport area;
    /** Wall time spent building+simulating this flow (per-phase
     * timing of the machine-readable bench output). */
    double measure_seconds = 0.0;

    obs::json::Value
    toJson() const
    {
        obs::json::Value out{obs::json::Object{}};
        out.set("cycles", cycles);
        out.set("clock_period_ns", clock_period_ns);
        out.set("exec_time_ns", exec_time_ns);
        out.set("lut", area.lut);
        out.set("ff", area.ff);
        out.set("dsp", area.dsp);
        out.set("measure_seconds", measure_seconds);
        return out;
    }
};

/** All four flows on one benchmark. */
struct BenchmarkMetrics
{
    std::string name;
    FlowMetrics df_io;
    FlowMetrics df_ooo;
    FlowMetrics graphiti;
    FlowMetrics vericert;
    bool graphiti_refused = false;  ///< the bicg case

    obs::json::Value
    toJson() const
    {
        obs::json::Value out{obs::json::Object{}};
        out.set("name", name);
        out.set("df_io", df_io.toJson());
        out.set("df_ooo", df_ooo.toJson());
        out.set("graphiti", graphiti.toJson());
        out.set("vericert", vericert.toJson());
        out.set("graphiti_refused", graphiti_refused);
        return out;
    }
};

/**
 * The standard `--json <path>` flag every bench binary understands.
 * Returns the path, or "" when the flag is absent.
 */
inline std::string
jsonPathFromArgs(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    return "";
}

/**
 * Rewrite `--json <path>` into google-benchmark's native
 * `--benchmark_out=<path> --benchmark_out_format=json` pair, so the
 * micro-benches share the same flag as the table regenerators.
 * @p storage owns the rewritten strings and must outlive the result.
 */
inline std::vector<char*>
translateJsonFlag(int argc, char** argv,
                  std::vector<std::string>& storage)
{
    storage.clear();
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            storage.push_back(std::string("--benchmark_out=") +
                              argv[i + 1]);
            storage.emplace_back("--benchmark_out_format=json");
            ++i;
        } else {
            storage.emplace_back(argv[i]);
        }
    }
    std::vector<char*> out;
    out.reserve(storage.size());
    for (std::string& s : storage)
        out.push_back(s.data());
    return out;
}

/** Custom gbench main body honoring the shared --json flag. */
#define GRAPHITI_BENCHMARK_MAIN()                                       \
    int main(int argc, char** argv)                                     \
    {                                                                   \
        std::vector<std::string> storage;                               \
        std::vector<char*> args =                                       \
            ::graphiti::bench::translateJsonFlag(argc, argv, storage);  \
        int n = static_cast<int>(args.size());                          \
        ::benchmark::Initialize(&n, args.data());                       \
        if (::benchmark::ReportUnrecognizedArguments(n, args.data()))   \
            return 1;                                                   \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        ::benchmark::Shutdown();                                        \
        return 0;                                                       \
    }                                                                   \
    int main(int, char**)

/**
 * Accumulator for the table regenerators' machine-readable output:
 * one JSON document per run with per-benchmark flow metrics (each
 * carrying its measure_seconds phase timing) plus named top-level
 * phases, written when --json was requested.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string tool)
    {
        root_.set("tool", std::move(tool));
        benchmarks_ = obs::json::Array{};
        phases_ = obs::json::Array{};
    }

    /** Record one benchmark's flow metrics. */
    void
    benchmark(const BenchmarkMetrics& m)
    {
        benchmarks_.push(m.toJson());
    }

    /** Record one named wall-clock phase. */
    void
    phase(const std::string& name, double seconds)
    {
        obs::json::Value entry{obs::json::Object{}};
        entry.set("name", name);
        entry.set("seconds", seconds);
        phases_.push(std::move(entry));
    }

    /** Attach an extra top-level field (speedups, verdicts, ...). */
    void
    set(const std::string& key, obs::json::Value value)
    {
        root_.set(key, std::move(value));
    }

    /** Write the document when @p path is nonempty; true on success
     * (or no-op). */
    bool
    writeIfRequested(const std::string& path)
    {
        if (path.empty())
            return true;
        root_.set("benchmarks", benchmarks_);
        root_.set("phases", phases_);
        Result<bool> wrote = obs::json::writeFile(path, root_);
        if (!wrote.ok()) {
            // Loud and nonzero: a bench run whose report silently
            // vanished looks identical to one that was never asked
            // for a report, and a perf gate comparing against the
            // stale previous file would pass on garbage.
            std::cerr << "error: --json report was NOT written: "
                      << wrote.error().message << "\n";
            return false;
        }
        return true;
    }

  private:
    obs::json::Value root_{obs::json::Object{}};
    obs::json::Value benchmarks_;
    obs::json::Value phases_;
};

inline std::size_t
simulateFlow(const ExprHigh& g, const circuits::BenchmarkSpec& spec,
             std::shared_ptr<FnRegistry> registry)
{
    sim::Simulator simulator =
        sim::Simulator::build(g, registry).take();
    for (const auto& [name, data] : spec.memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> r = simulator.run(
        spec.inputs, spec.expected_outputs, spec.serial_io);
    if (!r.ok()) {
        std::cerr << spec.name << ": simulation failed: "
                  << r.error().message << "\n";
        return 0;
    }
    return r.value().cycles;
}

inline FlowMetrics
measureCircuit(const ExprHigh& g, const circuits::BenchmarkSpec& spec,
               std::shared_ptr<FnRegistry> registry)
{
    auto start = std::chrono::steady_clock::now();
    FlowMetrics m;
    m.cycles = simulateFlow(g, spec, registry);
    m.clock_period_ns = arch::clockPeriodOf(g);
    m.exec_time_ns = arch::executionTimeNs(m.cycles, m.clock_period_ns);
    m.area = arch::areaOf(g);
    m.measure_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return m;
}

/** Evaluate every flow on benchmark @p name. */
inline BenchmarkMetrics
evaluateBenchmark(const std::string& name, int tag_override = 0)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark(name).take();
    int tags = tag_override > 0 ? tag_override : spec.num_tags;

    BenchmarkMetrics out;
    out.name = name;

    // DF-IO.
    {
        auto registry = std::make_shared<FnRegistry>();
        out.df_io = measureCircuit(spec.df_io, spec, registry);
    }
    // GRAPHITI (verified; may refuse).
    {
        Environment env;
        Result<PipelineResult> transformed = runOooPipeline(
            spec.df_io, env, {.num_tags = tags, .reexpand = true});
        if (transformed.ok()) {
            out.graphiti_refused = true;
            for (const LoopTransformReport& loop :
                 transformed.value().loops)
                out.graphiti_refused &= !loop.transformed;
            out.graphiti = measureCircuit(transformed.value().graph,
                                          spec, env.functionsPtr());
        }
    }
    // DF-OoO (unverified: transforms even bicg's variant).
    {
        Environment env;
        const ExprHigh& input =
            spec.df_ooo_input ? *spec.df_ooo_input : spec.df_io;
        Result<PipelineResult> transformed = runOooPipeline(
            input, env, {.num_tags = tags, .reexpand = true});
        if (transformed.ok())
            out.df_ooo = measureCircuit(transformed.value().graph, spec,
                                        env.functionsPtr());
    }
    // Vericert.
    {
        static_hls::StaticReport report =
            static_hls::scheduleAndEvaluate(spec.static_kernel);
        out.vericert.cycles = report.cycles;
        out.vericert.clock_period_ns = report.clock_period_ns;
        out.vericert.exec_time_ns = arch::executionTimeNs(
            report.cycles, report.clock_period_ns);
        out.vericert.area = report.area;
    }
    return out;
}

}  // namespace graphiti::bench

#endif  // GRAPHITI_BENCH_FLOWS_HPP
