#ifndef GRAPHITI_BENCH_FLOWS_HPP
#define GRAPHITI_BENCH_FLOWS_HPP

/**
 * @file
 * Shared evaluation harness for the table/figure benches: build and
 * measure all four flows of section 6 on one benchmark.
 *
 *  - DF-IO:    the untagged input circuit (Elakhras et al. [21]);
 *  - DF-OoO:   the unverified out-of-order flow (Elakhras et al.
 *              [22]) — reproduced by transforming the benchmark's
 *              df_ooo_input (for bicg, the store-suppressed variant
 *              the buggy flow effectively transformed);
 *  - GRAPHITI: the verified pipeline on the true circuit (refuses
 *              bicg);
 *  - Vericert: the statically scheduled baseline.
 */

#include <iostream>

#include "arch/area_timing.hpp"
#include "bench_circuits/benchmarks.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"
#include "static_hls/static_hls.hpp"

namespace graphiti::bench {

/** Metrics of one flow on one benchmark. */
struct FlowMetrics
{
    std::size_t cycles = 0;
    double clock_period_ns = 0.0;
    double exec_time_ns = 0.0;
    arch::AreaReport area;
};

/** All four flows on one benchmark. */
struct BenchmarkMetrics
{
    std::string name;
    FlowMetrics df_io;
    FlowMetrics df_ooo;
    FlowMetrics graphiti;
    FlowMetrics vericert;
    bool graphiti_refused = false;  ///< the bicg case
};

inline std::size_t
simulateFlow(const ExprHigh& g, const circuits::BenchmarkSpec& spec,
             std::shared_ptr<FnRegistry> registry)
{
    sim::Simulator simulator =
        sim::Simulator::build(g, registry).take();
    for (const auto& [name, data] : spec.memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> r = simulator.run(
        spec.inputs, spec.expected_outputs, spec.serial_io);
    if (!r.ok()) {
        std::cerr << spec.name << ": simulation failed: "
                  << r.error().message << "\n";
        return 0;
    }
    return r.value().cycles;
}

inline FlowMetrics
measureCircuit(const ExprHigh& g, const circuits::BenchmarkSpec& spec,
               std::shared_ptr<FnRegistry> registry)
{
    FlowMetrics m;
    m.cycles = simulateFlow(g, spec, registry);
    m.clock_period_ns = arch::clockPeriodOf(g);
    m.exec_time_ns = arch::executionTimeNs(m.cycles, m.clock_period_ns);
    m.area = arch::areaOf(g);
    return m;
}

/** Evaluate every flow on benchmark @p name. */
inline BenchmarkMetrics
evaluateBenchmark(const std::string& name, int tag_override = 0)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark(name).take();
    int tags = tag_override > 0 ? tag_override : spec.num_tags;

    BenchmarkMetrics out;
    out.name = name;

    // DF-IO.
    {
        auto registry = std::make_shared<FnRegistry>();
        out.df_io = measureCircuit(spec.df_io, spec, registry);
    }
    // GRAPHITI (verified; may refuse).
    {
        Environment env;
        Result<PipelineResult> transformed = runOooPipeline(
            spec.df_io, env, {.num_tags = tags, .reexpand = true});
        if (transformed.ok()) {
            out.graphiti_refused = true;
            for (const LoopTransformReport& loop :
                 transformed.value().loops)
                out.graphiti_refused &= !loop.transformed;
            out.graphiti = measureCircuit(transformed.value().graph,
                                          spec, env.functionsPtr());
        }
    }
    // DF-OoO (unverified: transforms even bicg's variant).
    {
        Environment env;
        const ExprHigh& input =
            spec.df_ooo_input ? *spec.df_ooo_input : spec.df_io;
        Result<PipelineResult> transformed = runOooPipeline(
            input, env, {.num_tags = tags, .reexpand = true});
        if (transformed.ok())
            out.df_ooo = measureCircuit(transformed.value().graph, spec,
                                        env.functionsPtr());
    }
    // Vericert.
    {
        static_hls::StaticReport report =
            static_hls::scheduleAndEvaluate(spec.static_kernel);
        out.vericert.cycles = report.cycles;
        out.vericert.clock_period_ns = report.clock_period_ns;
        out.vericert.exec_time_ns = arch::executionTimeNs(
            report.cycles, report.clock_period_ns);
        out.vericert.area = report.area;
    }
    return out;
}

}  // namespace graphiti::bench

#endif  // GRAPHITI_BENCH_FLOWS_HPP
