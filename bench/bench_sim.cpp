/**
 * @file
 * Throughput of the cycle-accurate elastic simulator (the ModelSim
 * substitute): simulated cycles per second on the in-order and
 * transformed matvec circuits.
 */

#include <benchmark/benchmark.h>

#include "flows.hpp"

#include "bench_circuits/benchmarks.hpp"
#include "rewrite/ooo_pipeline.hpp"
#include "sim/sim.hpp"

namespace {

using namespace graphiti;

void
runSim(benchmark::State& state, const ExprHigh& g,
       const circuits::BenchmarkSpec& spec,
       std::shared_ptr<FnRegistry> registry)
{
    std::size_t cycles = 0;
    for (auto _ : state) {
        sim::Simulator simulator =
            sim::Simulator::build(g, registry).take();
        for (const auto& [name, data] : spec.memories)
            simulator.setMemory(name, data);
        auto result = simulator.run(spec.inputs, spec.expected_outputs,
                                    spec.serial_io);
        if (!result.ok())
            state.SkipWithError(result.error().message.c_str());
        else
            cycles = result.value().cycles;
    }
    state.counters["sim_cycles"] = static_cast<double>(cycles);
    state.counters["cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_SimMatvecInOrder(benchmark::State& state)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark("matvec").take();
    auto registry = std::make_shared<FnRegistry>();
    runSim(state, spec.df_io, spec, registry);
}
BENCHMARK(BM_SimMatvecInOrder)->Unit(benchmark::kMillisecond);

void
BM_SimMatvecTagged(benchmark::State& state)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark("matvec").take();
    Environment env;
    auto transformed = runOooPipeline(
        spec.df_io, env, {.num_tags = spec.num_tags, .reexpand = true});
    if (!transformed.ok()) {
        state.SkipWithError("pipeline failed");
        return;
    }
    runSim(state, transformed.value().graph, spec, env.functionsPtr());
}
BENCHMARK(BM_SimMatvecTagged)->Unit(benchmark::kMillisecond);

}  // namespace

GRAPHITI_BENCHMARK_MAIN();
