/**
 * @file
 * Performance of the refinement checker (the executable stand-in for
 * the paper's Lean proofs): state-space size and solving time as the
 * input budget grows, on the theorem 5.3 instance (out-of-order GCD
 * loop vs sequential loop) and on catalog rewrites.
 */

#include <benchmark/benchmark.h>

#include "flows.hpp"

#include "bench_circuits/gcd.hpp"
#include "obs/scope.hpp"
#include "refine/refinement.hpp"
#include "refine/trace.hpp"
#include "rewrite/catalog.hpp"

namespace {

using namespace graphiti;

std::vector<Token>
gcdPairs()
{
    return {Token(Value::tuple(Value(3), Value(2))),
            Token(Value::tuple(Value(4), Value(2)))};
}

void
BM_LoopRewriteRefinement(benchmark::State& state)
{
    std::size_t budget = static_cast<std::size_t>(state.range(0));
    std::size_t pairs = 0, impl_states = 0, peak_bytes = 0;
    for (auto _ : state) {
        Environment env(4);
        ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
        ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
        auto report = checkGraphRefinement(
            ooo, seq, env, gcdPairs(),
            {.max_states = 2000000, .input_budget = budget});
        if (!report.ok() || !report.value().refines)
            state.SkipWithError("refinement check failed");
        else {
            pairs = report.value().reachable_pairs;
            impl_states = report.value().impl_states;
            peak_bytes = report.value().explore_peak_bytes +
                         report.value().peak_bytes;
        }
    }
    state.counters["impl_states"] = static_cast<double>(impl_states);
    state.counters["game_pairs"] = static_cast<double>(pairs);
    // Memory footprint of the check (explore + game high-water); 0
    // when the build compiles observability out.
    state.counters["peak_bytes"] = static_cast<double>(peak_bytes);
}
BENCHMARK(BM_LoopRewriteRefinement)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/**
 * Thread-scaling mode (ci/par_gate.sh): the same theorem 5.3 instance
 * at the largest input budget, with the verification core fanned over
 * N worker lanes. verify_states is deterministic (byte-identical
 * verdicts at any thread count), so the perf gate compares it exactly
 * while real_time measures the scaling itself.
 */
void
BM_ThreadScaling(benchmark::State& state)
{
    std::size_t threads = static_cast<std::size_t>(state.range(0));
    std::size_t verify_states = 0, peak_bytes = 0;
    auto scope = std::make_shared<obs::Scope>();
    obs::ScopedInstall install(scope.get());
    for (auto _ : state) {
        Environment env(4);
        ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
        ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
        auto report = checkGraphRefinement(
            ooo, seq, env, gcdPairs(),
            {.max_states = 2000000, .input_budget = 3,
             .threads = threads});
        if (!report.ok() || !report.value().refines)
            state.SkipWithError("refinement check failed");
        else {
            verify_states = report.value().impl_states +
                            report.value().spec_states;
            peak_bytes = report.value().explore_peak_bytes +
                         report.value().peak_bytes;
        }
    }
    state.counters["verify_states"] =
        static_cast<double>(verify_states);
    state.counters["threads"] = static_cast<double>(threads);
    // peak_bytes is identical at every thread count (size-based
    // estimates; docs/verification_observability.md); the pool
    // occupancy split is the nondeterministic part worth eyeballing.
    state.counters["peak_bytes"] = static_cast<double>(peak_bytes);
    state.counters["pool_chunks"] = static_cast<double>(
        scope->metrics().counter("pool.chunks"));
    state.counters["pool_steals"] = static_cast<double>(
        scope->metrics().counter("pool.steals"));
}
BENCHMARK(BM_ThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_CatalogRewriteRefinement(benchmark::State& state)
{
    RewriteDef def = catalog::combineMux();
    for (auto _ : state) {
        Environment env(3);
        auto report = verifyRewrite(
            def, env, {Token(Value(true)), Token(Value(1))},
            {.max_states = 300000, .input_budget = 2});
        if (!report.ok() || !report.value().refines)
            state.SkipWithError("catalog check failed");
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_CatalogRewriteRefinement)->Unit(benchmark::kMillisecond);

void
BM_TraceInclusion(benchmark::State& state)
{
    Environment env(6);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 3);
    DenotedModule impl =
        DenotedModule::denote(lowerToExprLow(ooo).value(), env).take();
    DenotedModule spec =
        DenotedModule::denote(lowerToExprLow(seq).value(), env).take();
    std::vector<Token> pool = {Token(Value::tuple(Value(6), Value(4))),
                               Token(Value::tuple(Value(9), Value(6)))};
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        IoTrace trace = randomTrace(impl, pool, rng,
                                    {.max_steps = 300,
                                     .input_bias = 0.4,
                                     .max_inputs = 3});
        Result<bool> admitted = admitsTrace(spec, trace);
        if (!admitted.ok() || !admitted.value())
            state.SkipWithError("trace not admitted");
        benchmark::DoNotOptimize(admitted);
    }
}
BENCHMARK(BM_TraceInclusion)->Unit(benchmark::kMillisecond);

}  // namespace

GRAPHITI_BENCHMARK_MAIN();
