/**
 * @file
 * Performance of the refinement checker (the executable stand-in for
 * the paper's Lean proofs): state-space size and solving time as the
 * input budget grows, on the theorem 5.3 instance (out-of-order GCD
 * loop vs sequential loop) and on catalog rewrites.
 */

#include <benchmark/benchmark.h>

#include "flows.hpp"

#include "bench_circuits/gcd.hpp"
#include "obs/scope.hpp"
#include "refine/refinement.hpp"
#include "refine/trace.hpp"
#include "rewrite/catalog.hpp"

namespace {

using namespace graphiti;

std::vector<Token>
gcdPairs()
{
    return {Token(Value::tuple(Value(3), Value(2))),
            Token(Value::tuple(Value(4), Value(2)))};
}

void
BM_LoopRewriteRefinement(benchmark::State& state)
{
    std::size_t budget = static_cast<std::size_t>(state.range(0));
    std::size_t pairs = 0, impl_states = 0, peak_bytes = 0;
    for (auto _ : state) {
        Environment env(4);
        ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
        ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
        auto report = checkGraphRefinement(
            ooo, seq, env, gcdPairs(),
            {.max_states = 2000000, .input_budget = budget});
        if (!report.ok() || !report.value().refines)
            state.SkipWithError("refinement check failed");
        else {
            pairs = report.value().reachable_pairs;
            impl_states = report.value().impl_states;
            peak_bytes = report.value().explore_peak_bytes +
                         report.value().peak_bytes;
        }
    }
    state.counters["impl_states"] = static_cast<double>(impl_states);
    state.counters["game_pairs"] = static_cast<double>(pairs);
    // Memory footprint of the check (explore + game high-water); 0
    // when the build compiles observability out.
    state.counters["peak_bytes"] = static_cast<double>(peak_bytes);
}
BENCHMARK(BM_LoopRewriteRefinement)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/**
 * Thread-scaling mode (ci/par_gate.sh): the same theorem 5.3 instance
 * at the largest input budget, with the verification core fanned over
 * N worker lanes. verify_states is deterministic (byte-identical
 * verdicts at any thread count), so the perf gate compares it exactly
 * while real_time measures the scaling itself.
 */
void
BM_ThreadScaling(benchmark::State& state)
{
    std::size_t threads = static_cast<std::size_t>(state.range(0));
    std::size_t verify_states = 0, peak_bytes = 0;
    auto scope = std::make_shared<obs::Scope>();
    obs::ScopedInstall install(scope.get());
    for (auto _ : state) {
        Environment env(4);
        ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
        ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
        auto report = checkGraphRefinement(
            ooo, seq, env, gcdPairs(),
            {.max_states = 2000000, .input_budget = 3,
             .threads = threads});
        if (!report.ok() || !report.value().refines)
            state.SkipWithError("refinement check failed");
        else {
            verify_states = report.value().impl_states +
                            report.value().spec_states;
            peak_bytes = report.value().explore_peak_bytes +
                         report.value().peak_bytes;
        }
    }
    state.counters["verify_states"] =
        static_cast<double>(verify_states);
    state.counters["threads"] = static_cast<double>(threads);
    // peak_bytes is identical at every thread count (size-based
    // estimates; docs/verification_observability.md); the pool
    // occupancy split is the nondeterministic part worth eyeballing.
    state.counters["peak_bytes"] = static_cast<double>(peak_bytes);
    state.counters["pool_chunks"] = static_cast<double>(
        scope->metrics().counter("pool.chunks"));
    state.counters["pool_steals"] = static_cast<double>(
        scope->metrics().counter("pool.steals"));
}
BENCHMARK(BM_ThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Bytes/state of the compact encoding vs the retired deep encoding.
 * The deep figure re-derives what the pre-pool StateSpace stored per
 * state: the full concrete GraphState (decoded here on demand), three
 * edge-vector headers, and the edge elements — the dedup index's
 * second deep copy is left out, so the ratio reported is conservative.
 */
void
BM_EncodingFootprint(benchmark::State& state)
{
    std::size_t budget = static_cast<std::size_t>(state.range(0));
    Environment env(4);
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
    DenotedModule impl =
        DenotedModule::denote(lowerToExprLow(ooo).value(), env).take();
    InputDomain domain = InputDomain::uniform(impl, gcdPairs());

    double encoded_per_state = 0, deep_per_state = 0;
    std::size_t states = 0, pool_states = 0;
    for (auto _ : state) {
        Result<StateSpace> space = StateSpace::explore(
            impl, domain,
            {.max_states = 2000000, .input_budget = budget});
        if (!space.ok()) {
            state.SkipWithError("exploration failed");
            continue;
        }
        const StateSpace& s = space.value();
        states = s.numStates();
        pool_states = s.pool().size();
        std::size_t deep = sizeof(StateSpace);
        for (std::uint32_t id = 0;
             id < static_cast<std::uint32_t>(states); ++id) {
            // What the old encoding kept resident per state.
            GraphState concrete;
            for (std::uint32_t pid : s.encodedRow(id))
                concrete.comps.push_back(s.pool().value(pid));
            deep += concrete.approxBytes() + sizeof(GraphState);
            deep += 3 * sizeof(std::vector<std::uint32_t>);
            deep += s.internalEdges(id).size() * sizeof(std::uint32_t);
            deep += s.inputEdges(id).size() *
                    sizeof(StateSpace::InputEdge);
            deep += s.outputEdges(id).size() *
                    sizeof(StateSpace::OutputEdge);
            deep += 2 * sizeof(std::uint32_t);  // budget + frontier slot
        }
        encoded_per_state = static_cast<double>(s.approxBytes()) /
                            static_cast<double>(states);
        deep_per_state = static_cast<double>(deep) /
                         static_cast<double>(states);
        benchmark::DoNotOptimize(space);
    }
    state.counters["verify_states"] = static_cast<double>(states);
    state.counters["pool_states"] = static_cast<double>(pool_states);
    state.counters["encoded_bytes_per_state"] = encoded_per_state;
    state.counters["deep_bytes_per_state"] = deep_per_state;
    state.counters["footprint_ratio"] =
        encoded_per_state > 0 ? deep_per_state / encoded_per_state : 0;
}
BENCHMARK(BM_EncodingFootprint)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/**
 * Spill-tier round trip: park an exploration whose frontier exceeds
 * spill_bytes, then resume to completion — completion must go through
 * the spill file, and the run reports how much paging cost. The
 * fingerprint is asserted against a one-shot exploration, so the
 * benchmark doubles as an end-to-end spill correctness probe.
 */
void
BM_FrontierSpill(benchmark::State& state)
{
    Environment env(4);
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 2);
    DenotedModule impl =
        DenotedModule::denote(lowerToExprLow(ooo).value(), env).take();
    InputDomain domain = InputDomain::uniform(impl, gcdPairs());
    Result<StateSpace> one_shot = StateSpace::explore(
        impl, domain, {.max_states = 2000000, .input_budget = 3});
    if (!one_shot.ok()) {
        state.SkipWithError("one-shot exploration failed");
        return;
    }
    std::uint64_t want = one_shot.value().fingerprint();

    std::size_t spills = 0, spilled_bytes = 0, paged_in_bytes = 0;
    std::size_t states = 0;
    for (auto _ : state) {
        Result<StateSpace> parked = StateSpace::explorePartial(
            impl, domain,
            {.max_states = 800, .input_budget = 3,
             .spill_bytes = 256});
        if (!parked.ok() || parked.value().complete() ||
            parked.value().spillBytes() == 0) {
            state.SkipWithError("exploration did not park + spill");
            continue;
        }
        StateSpace space = parked.take();
        bool ok = true;
        while (!space.complete()) {
            Result<bool> more = space.resume(impl, 400);
            if (!more.ok()) {
                state.SkipWithError("resume failed");
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        if (space.fingerprint() != want) {
            state.SkipWithError("spilled space diverged from one-shot");
            continue;
        }
        spills = space.spillStats().spills;
        spilled_bytes = space.spillStats().spilled_bytes;
        paged_in_bytes = space.spillStats().paged_in_bytes;
        states = space.numStates();
    }
    state.counters["verify_states"] = static_cast<double>(states);
    state.counters["spills"] = static_cast<double>(spills);
    state.counters["spilled_bytes"] = static_cast<double>(spilled_bytes);
    state.counters["paged_in_bytes"] =
        static_cast<double>(paged_in_bytes);
}
BENCHMARK(BM_FrontierSpill)->Unit(benchmark::kMillisecond);

void
BM_CatalogRewriteRefinement(benchmark::State& state)
{
    RewriteDef def = catalog::combineMux();
    for (auto _ : state) {
        Environment env(3);
        auto report = verifyRewrite(
            def, env, {Token(Value(true)), Token(Value(1))},
            {.max_states = 300000, .input_budget = 2});
        if (!report.ok() || !report.value().refines)
            state.SkipWithError("catalog check failed");
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_CatalogRewriteRefinement)->Unit(benchmark::kMillisecond);

void
BM_TraceInclusion(benchmark::State& state)
{
    Environment env(6);
    ExprHigh seq = circuits::buildGcdNormalizedLoop(env.functions());
    ExprHigh ooo = circuits::buildGcdOutOfOrder(env.functions(), 3);
    DenotedModule impl =
        DenotedModule::denote(lowerToExprLow(ooo).value(), env).take();
    DenotedModule spec =
        DenotedModule::denote(lowerToExprLow(seq).value(), env).take();
    std::vector<Token> pool = {Token(Value::tuple(Value(6), Value(4))),
                               Token(Value::tuple(Value(9), Value(6)))};
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        IoTrace trace = randomTrace(impl, pool, rng,
                                    {.max_steps = 300,
                                     .input_bias = 0.4,
                                     .max_inputs = 3});
        Result<bool> admitted = admitsTrace(spec, trace);
        if (!admitted.ok() || !admitted.value())
            state.SkipWithError("trace not admitted");
        benchmark::DoNotOptimize(admitted);
    }
}
BENCHMARK(BM_TraceInclusion)->Unit(benchmark::kMillisecond);

}  // namespace

GRAPHITI_BENCHMARK_MAIN();
