/**
 * @file
 * Regenerates figure 8 of the paper: per-benchmark performance of
 * DF-IO and GRAPHITI *relative to DF-OoO* (cycle count, execution
 * time, and the area panels), printed as normalized series. Values
 * above 1.0 mean worse than DF-OoO (more cycles / time / area).
 *
 * Also prints the tag-count ablation called out in DESIGN.md: matvec
 * throughput and FF cost as the Tagger's tag budget shrinks — the
 * sizing knob behind the paper's per-benchmark tag choices.
 */

#include <cstdio>

#include "flows.hpp"

int
main(int argc, char** argv)
{
    using graphiti::bench::BenchmarkMetrics;

    std::string json_path = graphiti::bench::jsonPathFromArgs(argc, argv);
    graphiti::bench::JsonReport report("bench_fig8");
    auto wall_start = std::chrono::steady_clock::now();

    std::printf("Figure 8 (left/middle): relative cycle count and "
                "execution time, normalized to DF-OoO\n\n");
    std::printf("%-12s | %10s %10s | %10s %10s\n", "benchmark",
                "IO cyc", "GRA cyc", "IO time", "GRA time");
    std::vector<BenchmarkMetrics> all;
    for (const std::string& name : graphiti::circuits::benchmarkNames()) {
        all.push_back(graphiti::bench::evaluateBenchmark(name));
        report.benchmark(all.back());
    }
    for (const BenchmarkMetrics& m : all) {
        std::printf("%-12s | %10.2f %10.2f | %10.2f %10.2f%s\n",
                    m.name.c_str(),
                    static_cast<double>(m.df_io.cycles) /
                        static_cast<double>(m.df_ooo.cycles),
                    static_cast<double>(m.graphiti.cycles) /
                        static_cast<double>(m.df_ooo.cycles),
                    m.df_io.exec_time_ns / m.df_ooo.exec_time_ns,
                    m.graphiti.exec_time_ns / m.df_ooo.exec_time_ns,
                    m.graphiti_refused ? "  (refused; = DF-IO)" : "");
    }

    std::printf("\nFigure 8 (right): relative LUT / FF, normalized to "
                "DF-OoO\n\n");
    std::printf("%-12s | %8s %8s | %8s %8s\n", "benchmark", "IO LUT",
                "GRA LUT", "IO FF", "GRA FF");
    for (const BenchmarkMetrics& m : all) {
        std::printf("%-12s | %8.2f %8.2f | %8.2f %8.2f\n",
                    m.name.c_str(),
                    static_cast<double>(m.df_io.area.lut) /
                        static_cast<double>(m.df_ooo.area.lut),
                    static_cast<double>(m.graphiti.area.lut) /
                        static_cast<double>(m.df_ooo.area.lut),
                    static_cast<double>(m.df_io.area.ff) /
                        static_cast<double>(m.df_ooo.area.ff),
                    static_cast<double>(m.graphiti.area.ff) /
                        static_cast<double>(m.df_ooo.area.ff));
    }

    std::printf("\nAblation: matvec vs Tagger tag budget "
                "(throughput/area knob)\n\n");
    std::printf("%5s | %8s | %10s | %8s\n", "tags", "cycles",
                "speedup/IO", "FF");
    graphiti::obs::json::Value ablation{graphiti::obs::json::Array{}};
    for (int tags : {2, 4, 8, 16, 32, 50}) {
        BenchmarkMetrics m =
            graphiti::bench::evaluateBenchmark("matvec", tags);
        std::printf("%5d | %8zu | %10.2f | %8d\n", tags,
                    m.graphiti.cycles,
                    static_cast<double>(m.df_io.cycles) /
                        static_cast<double>(m.graphiti.cycles),
                    m.graphiti.area.ff);
        graphiti::obs::json::Value entry{graphiti::obs::json::Object{}};
        entry.set("tags", tags);
        entry.set("cycles", m.graphiti.cycles);
        entry.set("ff", m.graphiti.area.ff);
        ablation.push(std::move(entry));
    }
    report.set("matvec_tag_ablation", std::move(ablation));
    report.phase("total", std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wall_start)
                              .count());
    return report.writeIfRequested(json_path) ? 0 : 1;
}
