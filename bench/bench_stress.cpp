/**
 * @file
 * Throughput of the hazard-stress harness: fault plans validated per
 * second on the GCD circuits, for the baseline battery and for a
 * random-plan-only sweep. This bounds how much adversarial-timing
 * coverage a CI budget buys.
 */

#include <benchmark/benchmark.h>

#include "flows.hpp"

#include "bench_circuits/gcd.hpp"
#include "faults/stress.hpp"
#include "rewrite/ooo_pipeline.hpp"

namespace {

using namespace graphiti;

faults::Workload
gcdWorkload()
{
    faults::Workload w;
    std::vector<Token> as, bs;
    for (int i = 0; i < 8; ++i) {
        as.emplace_back(Value(1071 + 17 * i));
        bs.emplace_back(Value(462 + 3 * i));
    }
    w.inputs = {std::move(as), std::move(bs)};
    w.expected_outputs = 8;
    return w;
}

void
BM_StressGcdInOrder(benchmark::State& state)
{
    Environment env;
    ExprHigh gcd = circuits::buildGcdInOrder();
    faults::Workload w = gcdWorkload();
    faults::StressOptions options;
    options.random_plans = static_cast<std::size_t>(state.range(0));
    options.plan_config.horizon = 1024;

    std::size_t plans = 0;
    for (auto _ : state) {
        faults::StressHarness harness(options);
        auto report = harness.run(gcd, env.functionsPtr(), w);
        if (!report.ok() || !report.value().invariant_holds) {
            state.SkipWithError("stress run failed");
            break;
        }
        plans = report.value().plansRun();
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(plans));
    }
    state.counters["plans"] = static_cast<double>(plans);
}
BENCHMARK(BM_StressGcdInOrder)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_StressGcdPair(benchmark::State& state)
{
    // Original + tagged out-of-order circuit under the same battery:
    // the shape Compiler::stressCompilation runs.
    Environment env;
    ExprHigh gcd = circuits::buildGcdInOrder();
    auto ooo =
        runOooPipeline(gcd, env, {.num_tags = 8, .reexpand = true});
    if (!ooo.ok()) {
        state.SkipWithError("pipeline failed");
        return;
    }
    faults::Workload w = gcdWorkload();
    faults::StressOptions options;
    options.random_plans = 4;
    options.plan_config.horizon = 1024;

    for (auto _ : state) {
        faults::StressHarness harness(options);
        auto report =
            harness.runPair(gcd, ooo.value().graph, env.functionsPtr(), w);
        if (!report.ok() || !report.value().invariant_holds) {
            state.SkipWithError("stress run failed");
            break;
        }
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<std::int64_t>(report.value().plansRun()));
    }
}
BENCHMARK(BM_StressGcdPair)->Unit(benchmark::kMillisecond);

}  // namespace

GRAPHITI_BENCHMARK_MAIN();
