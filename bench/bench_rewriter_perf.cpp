/**
 * @file
 * Section 6.3's rewriting-cost evaluation: wall time and number of
 * rewrites applied by the full pipeline per benchmark circuit (the
 * paper reports e.g. matvec: 90 nodes / 1650 rewrites / 9.76 s and
 * gemm: 180 nodes / 4416 rewrites / 81.49 s for the Lean
 * implementation; the counters here show this implementation's
 * node/rewrite scaling on the same pipeline structure).
 */

#include <benchmark/benchmark.h>

#include "flows.hpp"

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "rewrite/ooo_pipeline.hpp"

namespace {

using namespace graphiti;

void
runPipeline(benchmark::State& state, const ExprHigh& graph, int tags)
{
    std::size_t rewrites = 0;
    std::size_t out_nodes = 0;
    for (auto _ : state) {
        Environment env;
        Result<PipelineResult> result =
            runOooPipeline(graph, env, {.num_tags = tags});
        if (!result.ok())
            state.SkipWithError(result.error().message.c_str());
        else {
            rewrites = result.value().stats.rewrites_applied;
            out_nodes = result.value().graph.numNodes();
        }
        benchmark::DoNotOptimize(result);
    }
    state.counters["input_nodes"] =
        static_cast<double>(graph.numNodes());
    state.counters["output_nodes"] = static_cast<double>(out_nodes);
    state.counters["rewrites"] = static_cast<double>(rewrites);
}

void
BM_PipelineGcd(benchmark::State& state)
{
    runPipeline(state, circuits::buildGcdInOrder(), 8);
}
BENCHMARK(BM_PipelineGcd)->Unit(benchmark::kMillisecond);

void
BM_PipelineBenchmark(benchmark::State& state, const std::string& name)
{
    circuits::BenchmarkSpec spec =
        circuits::buildBenchmark(name).take();
    const ExprHigh& input =
        spec.df_ooo_input ? *spec.df_ooo_input : spec.df_io;
    runPipeline(state, input, spec.num_tags);
}

void
BM_PipelineMatvec(benchmark::State& state)
{
    BM_PipelineBenchmark(state, "matvec");
}
BENCHMARK(BM_PipelineMatvec)->Unit(benchmark::kMillisecond);

void
BM_PipelineGemm(benchmark::State& state)
{
    BM_PipelineBenchmark(state, "gemm");
}
BENCHMARK(BM_PipelineGemm)->Unit(benchmark::kMillisecond);

void
BM_PipelineMvt(benchmark::State& state)
{
    BM_PipelineBenchmark(state, "mvt");
}
BENCHMARK(BM_PipelineMvt)->Unit(benchmark::kMillisecond);

void
BM_PipelineBicgForced(benchmark::State& state)
{
    BM_PipelineBenchmark(state, "bicg");
}
BENCHMARK(BM_PipelineBicgForced)->Unit(benchmark::kMillisecond);

void
BM_PipelineGsum(benchmark::State& state)
{
    BM_PipelineBenchmark(state, "gsum-many");
}
BENCHMARK(BM_PipelineGsum)->Unit(benchmark::kMillisecond);

/** Scaling with graph size (section 6.3: "graphs with a couple of
 * hundred nodes"): a farm of N independent GCD loops. */
void
BM_PipelineFarm(benchmark::State& state)
{
    runPipeline(state,
                circuits::buildGcdFarm(static_cast<int>(state.range(0))),
                4);
}
BENCHMARK(BM_PipelineFarm)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

GRAPHITI_BENCHMARK_MAIN();
