/**
 * @file
 * Regenerates table 2 of the paper: cycle count, clock period and
 * execution time of DF-IO, DF-OoO, GRAPHITI and Vericert on the six
 * evaluation benchmarks, plus geometric means.
 *
 * Absolute numbers come from this repository's cycle simulator and
 * area/timing model rather than ModelSim + Vivado, so they differ from
 * the paper's; the *shape* — who wins, by what rough factor, GRAPHITI
 * matching DF-OoO everywhere except bicg (refused for the store in its
 * loop body) — is the reproduced result.
 */

#include <cmath>
#include <cstdio>

#include "flows.hpp"

#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"

namespace {

using graphiti::bench::BenchmarkMetrics;
using graphiti::bench::FlowMetrics;

double
geomean(const std::vector<double>& xs)
{
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path = graphiti::bench::jsonPathFromArgs(argc, argv);
    graphiti::bench::JsonReport report("bench_table2");
    auto wall_start = std::chrono::steady_clock::now();

    std::printf("Table 2: cycle count, clock period (ns) and execution "
                "time (ns)\n");
    std::printf("flows: DF-IO | DF-OoO | GRAPHITI | Vericert\n\n");
    std::printf("%-12s | %27s | %27s | %35s\n", "benchmark",
                "cycle count", "clock period (ns)",
                "execution time (ns)");
    std::printf("%-12s | %6s %6s %6s %6s | %6s %6s %6s %6s | %8s %8s "
                "%8s %8s\n",
                "", "IO", "OoO", "GRA", "Ver", "IO", "OoO", "GRA", "Ver",
                "IO", "OoO", "GRA", "Ver");

    std::vector<std::vector<double>> cycle_cols(4), cp_cols(4),
        exec_cols(4);
    for (const std::string& name : graphiti::circuits::benchmarkNames()) {
        BenchmarkMetrics m = graphiti::bench::evaluateBenchmark(name);
        report.benchmark(m);
        const FlowMetrics* flows[4] = {&m.df_io, &m.df_ooo, &m.graphiti,
                                       &m.vericert};
        std::printf("%-12s | %6zu %6zu %6zu %6zu | %6.2f %6.2f %6.2f "
                    "%6.2f | %8.0f %8.0f %8.0f %8.0f%s\n",
                    name.c_str(), flows[0]->cycles, flows[1]->cycles,
                    flows[2]->cycles, flows[3]->cycles,
                    flows[0]->clock_period_ns, flows[1]->clock_period_ns,
                    flows[2]->clock_period_ns, flows[3]->clock_period_ns,
                    flows[0]->exec_time_ns, flows[1]->exec_time_ns,
                    flows[2]->exec_time_ns, flows[3]->exec_time_ns,
                    m.graphiti_refused ? "   (GRAPHITI refused: store "
                                         "in loop body)"
                                       : "");
        for (int f = 0; f < 4; ++f) {
            cycle_cols[f].push_back(
                static_cast<double>(flows[f]->cycles));
            cp_cols[f].push_back(flows[f]->clock_period_ns);
            exec_cols[f].push_back(flows[f]->exec_time_ns);
        }
    }
    std::printf("%-12s | %6.0f %6.0f %6.0f %6.0f | %6.2f %6.2f %6.2f "
                "%6.2f | %8.0f %8.0f %8.0f %8.0f\n",
                "geomean", geomean(cycle_cols[0]), geomean(cycle_cols[1]),
                geomean(cycle_cols[2]), geomean(cycle_cols[3]),
                geomean(cp_cols[0]), geomean(cp_cols[1]),
                geomean(cp_cols[2]), geomean(cp_cols[3]),
                geomean(exec_cols[0]), geomean(exec_cols[1]),
                geomean(exec_cols[2]), geomean(exec_cols[3]));

    double speedup_io = geomean(exec_cols[0]) / geomean(exec_cols[2]);
    double speedup_ver = geomean(exec_cols[3]) / geomean(exec_cols[2]);
    std::printf("\nGRAPHITI speedup vs DF-IO (geomean):    %.1fx "
                "(paper: 2.1x)\n",
                speedup_io);
    std::printf("GRAPHITI speedup vs Vericert (geomean): %.1fx "
                "(paper: 5.8x)\n",
                speedup_ver);

    graphiti::obs::json::Value speedups{graphiti::obs::json::Object{}};
    speedups.set("vs_df_io", speedup_io);
    speedups.set("vs_vericert", speedup_ver);
    report.set("speedups", std::move(speedups));

    // Deterministic verification probe (ci/perf_gate.sh): govern-verify
    // the gcd compilation twice through one compiler. Exploration sizes
    // and cache counters are pure functions of the circuit and budget —
    // unlike wall-clock, perf_compare.py compares them exactly.
    {
        auto verify_start = std::chrono::steady_clock::now();
        graphiti::Compiler compiler;
        graphiti::CompileOptions options;
        options.obs = std::make_shared<graphiti::obs::Scope>();
        options.governed_verify = true;
        options.threads = 0;  // hardware concurrency
        options.verify_budget.max_states = 800;
        options.verify_budget.partial_max_states = 300;
        options.verify_budget.input_budget = 1;
        options.verify_budget.trace_walks = 2;
        options.verify_budget.trace.max_steps = 60;
        options.verify_budget.trace.max_inputs = 2;
        graphiti::ExprHigh gcd = graphiti::circuits::buildGcdInOrder();
        auto first = compiler.compileGraph(gcd, options);
        double first_seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   verify_start)
                                   .count();
        auto second = compiler.compileGraph(gcd, options);
        graphiti::obs::json::Value verify{graphiti::obs::json::Object{}};
        std::size_t verify_states = 0;
        if (first.ok() && second.ok()) {
            const graphiti::guard::VerificationVerdict& verdict =
                first.value().verdict;
            verify_states = verdict.report.impl_states +
                            verdict.report.spec_states;
            verify.set("level", first.value().verification_level);
            verify.set("verify_states", verify_states);
            verify.set("reachable_pairs",
                       verdict.report.reachable_pairs);
            verify.set("cache_hits", compiler.verifyCache().hits());
            verify.set("cache_misses", compiler.verifyCache().misses());
            verify.set("second_compile_cache_hit",
                       second.value().verify_cache_hit);
            std::printf("\nverify probe (gcd, governed): level=%s, "
                        "states=%zu, second compile cache hit=%s\n",
                        first.value().verification_level.c_str(),
                        verify_states,
                        second.value().verify_cache_hit ? "yes" : "no");
        } else {
            verify.set("error", first.ok() ? second.error().message
                                           : first.error().message);
        }
        report.set("verify", std::move(verify));
        // Resource telemetry next to — never inside — the
        // deterministic verify object: peak bytes are stable per
        // budget, but pool occupancy (steals, idle) is timing-noise,
        // so perf_compare.py ignores this whole object.
        graphiti::obs::json::Value resources{
            graphiti::obs::json::Object{}};
        if (first.ok()) {
            resources.set("explore_peak_bytes",
                          first.value().verify_explore_peak_bytes);
            resources.set("game_peak_bytes",
                          first.value().verify_game_peak_bytes);
            // Memory-efficiency figures the perf gate tracks over time
            // (ci/perf_compare.py hard-fails a >10% peak-bytes/state
            // regression): explore high-water per explored state, and
            // explored states over the first (uncached) compile's
            // wall-clock.
            if (verify_states > 0) {
                resources.set(
                    "peak_bytes_per_state",
                    static_cast<double>(
                        first.value().verify_explore_peak_bytes) /
                        static_cast<double>(verify_states));
                resources.set("states_per_second",
                              first_seconds > 0.0
                                  ? static_cast<double>(verify_states) /
                                        first_seconds
                                  : 0.0);
            }
        }
        const graphiti::obs::MetricsRegistry& metrics =
            options.obs->metrics();
        resources.set("pool_batches", metrics.counter("pool.batches"));
        resources.set("pool_chunks", metrics.counter("pool.chunks"));
        resources.set("pool_idle_ns", metrics.counter("pool.idle_ns"));
        resources.set("pool_steals", metrics.counter("pool.steals"));
        report.set("verify_resources", std::move(resources));
        report.phase("verify_probe",
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - verify_start)
                         .count());
    }
    report.phase("total", std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wall_start)
                              .count());
    return report.writeIfRequested(json_path) ? 0 : 1;
}
