/**
 * @file
 * Performance of the e-graph oracle (the egg substitute of
 * section 3.2): equality-saturation time and e-graph growth on
 * Split/Join residues of increasing depth — the structures Pure
 * generation hands the oracle.
 */

#include <benchmark/benchmark.h>

#include "flows.hpp"

#include "egraph/egraph.hpp"

namespace {

using namespace graphiti::eg;

/** A split/join round-trip nest of the given depth. */
TermExpr
roundTrip(int depth)
{
    if (depth == 0)
        return TermExpr::leaf("in");
    TermExpr inner = roundTrip(depth - 1);
    return TermExpr::node(
        "pair", {TermExpr::node("fst", {inner}),
                 TermExpr::node("snd", {roundTrip(depth - 1)})});
}

void
BM_SaturatePairAlgebra(benchmark::State& state)
{
    int depth = static_cast<int>(state.range(0));
    std::size_t nodes = 0, applications = 0;
    for (auto _ : state) {
        EGraph g;
        ClassId cls = g.addTerm(roundTrip(depth));
        SaturationStats stats = g.saturate(pairAlgebraRules(), 30,
                                           200000);
        graphiti::Result<TermExpr> best = g.extract(cls);
        if (!best.ok())
            state.SkipWithError("extraction failed");
        nodes = g.numNodes();
        applications = stats.applications;
        benchmark::DoNotOptimize(best);
    }
    state.counters["enodes"] = static_cast<double>(nodes);
    state.counters["rule_applications"] =
        static_cast<double>(applications);
}
BENCHMARK(BM_SaturatePairAlgebra)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMicrosecond);

void
BM_ExtractMinimal(benchmark::State& state)
{
    EGraph g;
    ClassId cls = g.addTerm(roundTrip(5));
    g.saturate(pairAlgebraRules(), 30, 200000);
    for (auto _ : state) {
        graphiti::Result<TermExpr> best = g.extract(cls);
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_ExtractMinimal)->Unit(benchmark::kMicrosecond);

}  // namespace

GRAPHITI_BENCHMARK_MAIN();
