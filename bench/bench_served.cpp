/**
 * @file
 * Soak benchmark of the served daemon (docs/service.md): boots an
 * in-process daemon on a temporary unix socket, replays the
 * evaluation benchmark circuits (with per-request budget-seed
 * mutation, so the verdict cache sees a realistic hit/miss mix) from
 * concurrent clients, and reports p50/p99 request latency, shed rate
 * and verdict-cache hit rate through obs::MetricsRegistry.
 *
 * With --misbehave a deterministic faults::ConnectionPlan makes a
 * slice of requests hostile — half-written frames, disconnects right
 * after sending, deadline-zero floods, junk payloads — and the run
 * asserts the daemon answered every *healthy* request anyway.
 *
 * With --isolate N jobs run in sandboxed worker processes
 * (docs/service.md, "Process isolation"); the same latency
 * reservoirs then measure the isolation overhead against an
 * in-thread run (the perf gate records both and compares p50/p99 —
 * the budgeted ceiling is 2x). --crash-rate R arms a seeded
 * faults::CrashPlan in every worker, so a fraction R of compiles
 * die mid-job; the run then reports the answered rate — every
 * request must still get *some* structured response (ok, error, or
 * an honest shed) while workers are dying and respawning, and the
 * exit status only tolerates error/shed responses, never silence.
 *
 * Latency is kept in per-verb reservoirs keyed by JobSpec kind (each
 * client sends one ping alongside its verify load), so a cheap verb
 * never dilutes an expensive verb's percentiles. --json embeds the
 * daemon's own end-of-run stats snapshot (per-verb queue-wait vs
 * execute splits, connection counters, flight/log/span occupancy) —
 * docs/service_observability.md.
 *
 * Usage:
 *     bench_served [--clients N] [--requests N] [--workers N]
 *                  [--queue N] [--misbehave] [--seed S] [--json PATH]
 *                  [--isolate N] [--crash-rate R]
 *
 * Exit status: 0 when every healthy request got a response and the
 * report (when requested) was written; 1 otherwise.
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_circuits/benchmarks.hpp"
#include "dot/dot.hpp"
#include "faults/connection_plan.hpp"
#include "obs/latency.hpp"
#include "served/client.hpp"
#include "served/daemon.hpp"

namespace {

using namespace graphiti;

struct Args
{
    std::size_t clients = 3;
    std::size_t requests = 8;
    std::size_t workers = 2;
    std::size_t queue = 4;
    bool misbehave = false;
    std::uint64_t seed = 0x5e4ed5ULL;
    std::string json_path;
    /** 0 = in-thread lanes; N = sandboxed worker processes. */
    std::size_t isolate = 0;
    /** Seeded CrashPlan rate armed in every worker (needs --isolate). */
    double crash_rate = 0.0;
};

/** Tight, deterministic verification budget (the test-suite shape:
 * the benchmark circuits are large, so the ladder degrades — what
 * matters here is load, not assurance depth). */
JobSpec
makeSpec(const std::string& dot, int num_tags, std::uint64_t seed_salt)
{
    JobSpec spec;
    spec.kind = "verify";
    spec.circuit_dot = dot;
    spec.options.num_tags = num_tags;
    spec.options.governed_verify = true;
    spec.options.verify_budget.max_states = 800;
    spec.options.verify_budget.partial_max_states = 300;
    spec.options.verify_budget.input_budget = 1;
    spec.options.verify_budget.trace_walks = 2;
    spec.options.verify_budget.trace.max_steps = 60;
    spec.options.verify_budget.trace.max_inputs = 2;
    // The "mutation": the budget seed is part of the cache key, so
    // salting it makes a controlled fraction of requests novel while
    // repeats of the same salt hit the cache.
    spec.options.verify_budget.seed ^= seed_salt;
    return spec;
}

struct ClientOutcome
{
    std::size_t healthy_sent = 0;
    std::size_t healthy_answered = 0;
    std::size_t sheds = 0;
    std::size_t hostile_sent = 0;
    /** Structured "error" responses (crash-storm casualties). */
    std::size_t errors = 0;
    /** "rejected" after retry exhaustion (breaker/queue sheds). */
    std::size_t rejected = 0;
    /** Requests that got silence — always a failure. */
    std::size_t transport_failures = 0;
};

}  // namespace

int
main(int argc, char** argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        auto size_flag = [&](std::size_t& slot) {
            const char* v = value();
            if (v != nullptr)
                slot = static_cast<std::size_t>(std::atoi(v));
            return v != nullptr;
        };
        bool ok = true;
        if (arg == "--clients")
            ok = size_flag(args.clients);
        else if (arg == "--requests")
            ok = size_flag(args.requests);
        else if (arg == "--workers")
            ok = size_flag(args.workers);
        else if (arg == "--queue")
            ok = size_flag(args.queue);
        else if (arg == "--isolate")
            ok = size_flag(args.isolate);
        else if (arg == "--crash-rate") {
            const char* v = value();
            ok = v != nullptr;
            if (ok)
                args.crash_rate = std::atof(v);
        } else if (arg == "--misbehave")
            args.misbehave = true;
        else if (arg == "--seed") {
            const char* v = value();
            ok = v != nullptr;
            if (ok)
                args.seed = static_cast<std::uint64_t>(
                    std::strtoull(v, nullptr, 0));
        } else if (arg == "--json") {
            const char* v = value();
            ok = v != nullptr;
            if (ok)
                args.json_path = v;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 1;
        }
        if (!ok) {
            std::fprintf(stderr, "flag %s needs a value\n",
                         arg.c_str());
            return 1;
        }
    }

    // Pre-render every benchmark circuit once; requests rotate over
    // them.
    std::vector<std::pair<std::string, int>> circuits_pool;
    for (const std::string& name : circuits::benchmarkNames()) {
        circuits::BenchmarkSpec spec =
            circuits::buildBenchmark(name).take();
        const ExprHigh& graph =
            spec.df_ooo_input ? *spec.df_ooo_input : spec.df_io;
        circuits_pool.emplace_back(printDot(graph), spec.num_tags);
    }

    if (args.crash_rate > 0.0 && args.isolate == 0) {
        std::fprintf(stderr,
                     "--crash-rate needs --isolate (crashes are "
                     "injected into worker processes)\n");
        return 1;
    }

    std::string socket_path = "/tmp/graphiti-bench-served-" +
                              std::to_string(::getpid()) + ".sock";
    served::DaemonConfig config;
    config.socket_path = socket_path;
    config.scheduler.workers = args.workers;
    config.scheduler.queue_capacity = args.queue;
    config.scheduler.isolate = args.isolate;
    if (args.crash_rate > 0.0) {
        char plan_text[64];
        std::snprintf(plan_text, sizeof plan_text, "seed=%llu,rate=%g",
                      static_cast<unsigned long long>(args.seed),
                      args.crash_rate);
        config.scheduler.pool.sandbox.crash_plan = plan_text;
        // A crash storm trips the breaker by design; give it a short
        // cooldown so the run measures recovery, not a long outage.
        config.scheduler.pool.breaker_backoff.cap_ms = 500.0;
    }
    auto observer = std::make_shared<served::ServiceObserver>();
    config.scheduler.observer = observer;
    served::Daemon daemon(config);
    Result<bool> started = daemon.start();
    if (!started.ok()) {
        std::fprintf(stderr, "bench_served: %s\n",
                     started.error().message.c_str());
        return 1;
    }

    faults::ConnectionPlanConfig plan_config;
    faults::ConnectionPlan plan =
        args.misbehave ? faults::ConnectionPlan(args.seed, plan_config)
                       : faults::ConnectionPlan::wellBehaved();

    // Per-verb reservoirs, keyed by JobSpec kind. The map is built
    // up-front and never mutated by the client threads — each
    // LatencyReservoir is itself thread-safe.
    std::map<std::string, obs::LatencyReservoir> latency;
    latency["verify"];
    latency["ping"];
    std::vector<ClientOutcome> outcomes(args.clients);
    auto wall_start = std::chrono::steady_clock::now();

    std::vector<std::thread> client_threads;
    for (std::size_t c = 0; c < args.clients; ++c) {
        client_threads.emplace_back([&, c] {
            served::ClientConfig cc;
            cc.socket_path = socket_path;
            cc.seed = args.seed ^ (c * 0x9e3779b97f4a7c15ULL);
            cc.backoff.base_ms = 5.0;
            cc.backoff.cap_ms = 200.0;
            cc.backoff.max_attempts = 6;
            served::Client client(cc);
            ClientOutcome& mine = outcomes[c];

            // One ping per client: a second verb in the mix, proving
            // the per-verb reservoirs keep cheap and expensive kinds
            // apart (the daemon splits the same way).
            {
                JobSpec ping;
                ping.kind = "ping";
                mine.healthy_sent += 1;
                auto t0 = std::chrono::steady_clock::now();
                Result<served::JobResponse> response =
                    client.request(ping);
                if (response.ok() &&
                    response.value().status != "rejected") {
                    mine.healthy_answered += 1;
                    latency.at("ping").record(
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
                }
            }

            for (std::size_t r = 0; r < args.requests; ++r) {
                const auto& [dot, num_tags] =
                    circuits_pool[(c + r) % circuits_pool.size()];
                // Half the salts repeat across clients → cache hits;
                // half are novel → misses.
                std::uint64_t salt = (r % 2 == 0) ? r % 4
                                                  : (c * 1000 + r);
                JobSpec spec = makeSpec(dot, num_tags, salt);

                faults::ClientAction action = plan.action(c, r);
                if (action != faults::ClientAction::Behave)
                    mine.hostile_sent += 1;
                switch (action) {
                    case faults::ClientAction::TruncateFrame: {
                        Result<net::Socket> raw =
                            net::connectUnix(socket_path);
                        if (!raw.ok())
                            break;
                        served::JobRequest req;
                        req.id = r + 1;
                        req.job = spec.toJson();
                        std::string frame = served::encodeFrame(
                            req.toJson().dump());
                        std::size_t cut =
                            plan.truncateAt(c, r, frame.size());
                        net::writeAll(raw.value(),
                                      frame.substr(0, cut), 1000);
                        break;  // hang up mid-frame
                    }
                    case faults::ClientAction::JunkFrame: {
                        Result<net::Socket> raw =
                            net::connectUnix(socket_path);
                        if (!raw.ok())
                            break;
                        net::writeAll(
                            raw.value(),
                            served::encodeFrame("Z}not json!{"),
                            1000);
                        std::string ignored;
                        served::readFrame(raw.value(), ignored, 2000);
                        break;
                    }
                    case faults::ClientAction::DisconnectAfterSend: {
                        Result<net::Socket> raw =
                            net::connectUnix(socket_path);
                        if (!raw.ok())
                            break;
                        served::JobRequest req;
                        req.id = r + 1;
                        req.job = spec.toJson();
                        net::writeAll(
                            raw.value(),
                            served::encodeFrame(req.toJson().dump()),
                            1000);
                        break;  // vanish before the response
                    }
                    case faults::ClientAction::DeadlineZero: {
                        mine.healthy_sent += 1;  // still answered
                        auto t0 = std::chrono::steady_clock::now();
                        Result<served::JobResponse> response =
                            client.request(spec, 1e-9);
                        if (response.ok()) {
                            mine.healthy_answered += 1;
                            latency.at(spec.kind).record(
                                std::chrono::duration<double,
                                                      std::milli>(
                                    std::chrono::steady_clock::now() -
                                    t0)
                                    .count());
                        }
                        break;
                    }
                    case faults::ClientAction::Behave: {
                        mine.healthy_sent += 1;
                        auto t0 = std::chrono::steady_clock::now();
                        Result<served::JobResponse> response =
                            client.request(spec);
                        if (!response.ok()) {
                            mine.transport_failures += 1;
                            break;
                        }
                        const std::string& status =
                            response.value().status;
                        if (status == "rejected") {
                            mine.rejected += 1;
                            break;
                        }
                        if (status == "error")
                            mine.errors += 1;
                        mine.healthy_answered += 1;
                        latency.at(spec.kind).record(
                            std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
                        break;
                    }
                }
                mine.sheds = client.stats().sheds_seen;
            }
        });
    }
    for (std::thread& thread : client_threads)
        thread.join();
    double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    served::SchedulerStats sched = daemon.scheduler().stats();
    guard::VerdictStoreStats store = daemon.scheduler().store()->stats();
    // Worker-tier view (isolate mode only): spawn/respawn/crash
    // counters and the breaker — the storm's footprint.
    obs::json::Value worker_snapshot;
    if (const served::WorkerPool* pool =
            daemon.scheduler().workerPool())
        worker_snapshot = pool->healthJson();
    // The service's own view — per-verb queue-wait/execute windows,
    // connection counters, flight/log occupancy — before stop() tears
    // the daemon down.
    obs::json::Value service_snapshot = daemon.statsJson();
    daemon.stop();

    std::size_t healthy_sent = 0, healthy_answered = 0, sheds = 0,
                hostile = 0, errors = 0, rejected = 0, silent = 0;
    for (const ClientOutcome& outcome : outcomes) {
        healthy_sent += outcome.healthy_sent;
        healthy_answered += outcome.healthy_answered;
        sheds += outcome.sheds;
        hostile += outcome.hostile_sent;
        errors += outcome.errors;
        rejected += outcome.rejected;
        silent += outcome.transport_failures;
    }
    double shed_rate =
        sched.accepted + sched.shed == 0
            ? 0.0
            : static_cast<double>(sched.shed) /
                  static_cast<double>(sched.accepted + sched.shed);
    double hit_rate =
        store.hits + store.misses == 0
            ? 0.0
            : static_cast<double>(store.hits) /
                  static_cast<double>(store.hits + store.misses);

    std::printf("bench_served: %zu clients x %zu requests "
                "(%zu hostile) in %.2fs\n",
                args.clients, args.requests, hostile, wall_seconds);
    for (const auto& [verb, reservoir] : latency)
        std::printf(
            "  latency[%s]  p50 %.1fms  p99 %.1fms  max %.1fms\n",
            verb.c_str(), reservoir.percentile(50),
            reservoir.percentile(99), reservoir.max());
    std::printf("  shed rate %.1f%%  cache hit rate %.1f%%\n",
                100.0 * shed_rate, 100.0 * hit_rate);
    std::printf("  scheduler %s\n", sched.toJson().dump().c_str());
    std::printf("  healthy answered %zu / %zu\n", healthy_answered,
                healthy_sent);
    if (args.isolate > 0)
        std::printf("  workers %s\n",
                    worker_snapshot.dump().c_str());
    if (args.crash_rate > 0.0)
        std::printf("  crash storm: %zu error, %zu shed, %zu silent "
                    "(answered rate %.1f%%)\n",
                    errors, rejected, silent,
                    healthy_sent == 0
                        ? 100.0
                        : 100.0 *
                              static_cast<double>(healthy_answered +
                                                  rejected) /
                              static_cast<double>(healthy_sent));

    // The pass bar: without a crash storm every healthy request must
    // be answered outright; under one, structured errors and honest
    // sheds are the contract — only silence (a request that never got
    // a response) fails the run.
    bool all_answered =
        args.crash_rate > 0.0
            ? silent == 0 &&
                  healthy_answered + rejected == healthy_sent
            : healthy_answered == healthy_sent;
    if (!all_answered) {
        std::size_t excused = args.crash_rate > 0.0 ? rejected : 0;
        std::fprintf(stderr,
                     "error: %zu healthy request(s) went unanswered\n",
                     healthy_sent - healthy_answered - excused);
    }

    if (!args.json_path.empty()) {
        obs::json::Value doc{obs::json::Object{}};
        doc.set("bench", "bench_served");
        doc.set("clients", args.clients);
        doc.set("requests_per_client", args.requests);
        doc.set("hostile_requests", hostile);
        doc.set("wall_seconds", wall_seconds);
        obs::json::Value latency_json{obs::json::Object{}};
        for (const auto& [verb, reservoir] : latency)
            latency_json.set(verb, reservoir.toJson());
        doc.set("latency", latency_json);
        doc.set("shed_rate", shed_rate);
        doc.set("cache_hit_rate", hit_rate);
        doc.set("scheduler", sched.toJson());
        doc.set("store", store.toJson());
        doc.set("healthy_sent", healthy_sent);
        doc.set("healthy_answered", healthy_answered);
        doc.set("isolate", args.isolate);
        if (args.isolate > 0)
            doc.set("workers", worker_snapshot);
        if (args.crash_rate > 0.0) {
            doc.set("crash_rate", args.crash_rate);
            doc.set("error_responses", errors);
            doc.set("shed_responses", rejected);
            doc.set("silent_requests", silent);
            doc.set("answered_rate",
                    healthy_sent == 0
                        ? 1.0
                        : static_cast<double>(healthy_answered +
                                              rejected) /
                              static_cast<double>(healthy_sent));
        }
        doc.set("service", service_snapshot);
        Result<bool> wrote =
            obs::json::writeFile(args.json_path, doc);
        if (!wrote.ok()) {
            std::fprintf(stderr,
                         "error: --json report was NOT written: %s\n",
                         wrote.error().message.c_str());
            return 1;
        }
    }
    return all_answered ? 0 : 1;
}
