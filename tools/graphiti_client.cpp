/**
 * @file
 * graphiti-client: command-line client of graphiti-served
 * (docs/service.md).
 *
 * Submits one job — ping, compile, verify, validate — against a
 * running daemon, retrying shed responses and transport hiccups with
 * full-jitter exponential backoff, and prints the response JSON.
 * Circuits come from a dot file (--dot) or a built-in evaluation
 * benchmark by name (--benchmark; resolved locally, only the dot text
 * travels).
 *
 * Read-only introspection (docs/service_observability.md,
 * docs/verification_observability.md): --stats, --jobs, --health and
 * --metricsz query the daemon's observability plane; these verbs
 * bypass the scheduler queue, so they answer even when the service is
 * saturated or wedged. --watch polls the selected verb (default
 * stats) every --interval seconds, printing one JSON line per poll,
 * until interrupted. --watch-job ID tails one job's live verification
 * progress (states, frontier, game rounds, rung, parks/resumes) until
 * the job leaves the live table.
 *
 * Usage:
 *     graphiti-client --socket PATH [--tcp PORT] KIND
 *                     [--dot FILE | --benchmark NAME]
 *                     [--deadline S] [--threads N] [--attempts N]
 *                     [--max-states N] [--partial-states N]
 *                     [--input-budget N] [--trace-walks N]
 *     graphiti-client --socket PATH [--tcp PORT]
 *                     --stats | --jobs | --health | --metricsz
 *                     [--watch [--interval S]]
 *     graphiti-client --socket PATH [--tcp PORT]
 *                     --watch-job ID [--interval S]
 *
 * Exit status: 0 on an ok response, 1 on an error/cancelled response,
 * 2 on usage errors, 3 when every attempt failed at the transport.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_circuits/benchmarks.hpp"
#include "dot/dot.hpp"
#include "served/client.hpp"

namespace {

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--tcp PORT] KIND\n"
        "          [--dot FILE | --benchmark NAME] [--deadline S]\n"
        "          [--threads N] [--attempts N]\n"
        "       %s --socket PATH [--tcp PORT]\n"
        "          --stats | --jobs | --health | --metricsz\n"
        "          [--watch [--interval S]] | --watch-job ID\n"
        "  KIND             ping | compile | verify | validate\n"
        "                   | stats | jobs | health | metricsz\n"
        "  --dot FILE       send this dot file as the circuit\n"
        "  --benchmark NAME send this built-in benchmark's circuit\n"
        "  --deadline S     per-job wall-clock deadline in seconds\n"
        "  --job-id ID      correlation id for the job (default "
        "minted)\n"
        "  --threads N      verification worker lanes on the daemon\n"
        "  --attempts N     retry budget (default 5)\n"
        "  --max-states N   full-exploration state cap (verify)\n"
        "  --partial-states N  partial-exploration state cap\n"
        "  --input-budget N input tokens per explored execution\n"
        "  --trace-walks N  trace-inclusion walk count\n"
        "  --spill-bytes N  frontier spill cap per exploration "
        "(0 = off)\n"
        "  --stats          service counters, per-verb latency "
        "windows\n"
        "  --jobs           live job table (phase, deadline, rungs)\n"
        "  --health         lane liveness, store shards, uptime\n"
        "  --metricsz       metrics in Prometheus text exposition "
        "format\n"
        "  --watch          poll the introspection verb until "
        "interrupted\n"
        "  --watch-job ID   tail one job's live verification "
        "progress\n"
        "  --interval S     watch poll period in seconds (default "
        "2)\n",
        argv0, argv0);
    return 2;
}

bool
isIntrospection(const std::string& kind)
{
    return kind == "stats" || kind == "jobs" || kind == "health" ||
           kind == "metricsz";
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace graphiti;

    served::ClientConfig config;
    std::string kind;
    std::string dot_file;
    std::string benchmark;
    double deadline_seconds = 0.0;
    std::size_t threads = 0;
    guard::VerificationBudget budget;
    bool budget_set = false;
    bool watch = false;
    double interval_seconds = 2.0;
    std::string watch_job_id;
    std::string job_id;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (arg == "--socket") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.socket_path = v;
        } else if (arg == "--tcp") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.tcp_port = std::atoi(v);
        } else if (arg == "--dot") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            dot_file = v;
        } else if (arg == "--benchmark") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            benchmark = v;
        } else if (arg == "--deadline") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            deadline_seconds = std::atof(v);
        } else if (arg == "--threads") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            threads = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--attempts") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.backoff.max_attempts =
                static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--stats" || arg == "--jobs" ||
                   arg == "--health" || arg == "--metricsz") {
            kind = arg.substr(2);
        } else if (arg == "--job-id") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            job_id = v;
        } else if (arg == "--watch-job") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            watch_job_id = v;
        } else if (arg == "--watch") {
            watch = true;
        } else if (arg == "--interval") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            interval_seconds = std::atof(v);
        } else if (arg == "--max-states" || arg == "--partial-states" ||
                   arg == "--input-budget" || arg == "--trace-walks" ||
                   arg == "--spill-bytes") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            std::size_t n = static_cast<std::size_t>(std::atoll(v));
            if (arg == "--max-states")
                budget.max_states = n;
            else if (arg == "--partial-states")
                budget.partial_max_states = n;
            else if (arg == "--input-budget")
                budget.input_budget = n;
            else if (arg == "--spill-bytes")
                budget.spill_bytes = n;
            else
                budget.trace_walks = n;
            budget_set = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return usage(argv[0]);
        } else if (kind.empty()) {
            kind = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (watch && kind.empty())
        kind = "stats";
    if ((kind.empty() && watch_job_id.empty()) ||
        (config.socket_path.empty() && config.tcp_port < 0))
        return usage(argv[0]);
    if (watch && !isIntrospection(kind)) {
        std::fprintf(stderr,
                     "--watch needs an introspection verb "
                     "(--stats/--jobs/--health/--metricsz), not "
                     "\"%s\"\n",
                     kind.c_str());
        return 2;
    }

    served::Client client(config);

    if (!watch_job_id.empty()) {
        // Tail one job's live verification progress off the jobs
        // verb: one JSON line per poll while the job is queued or
        // running, stop once it leaves the table (completed). A job
        // never seen keeps polling — it may not have been submitted
        // yet — until interrupted.
        bool seen = false;
        for (;;) {
            Result<obs::json::Value> jobs = client.serviceJobs();
            if (!jobs.ok()) {
                std::fprintf(stderr, "graphiti-client: %s\n",
                             jobs.error().message.c_str());
                return 3;
            }
            const obs::json::Value* table = jobs.value().find("jobs");
            const obs::json::Value* match = nullptr;
            if (table != nullptr && table->isArray())
                for (const obs::json::Value& entry :
                     table->asArray()) {
                    const obs::json::Value* id = entry.find("job_id");
                    if (id != nullptr && id->isString() &&
                        id->asString() == watch_job_id) {
                        match = &entry;
                        break;
                    }
                }
            if (match != nullptr) {
                seen = true;
                std::printf("%s\n", match->dump(-1).c_str());
                std::fflush(stdout);
            } else if (seen) {
                std::printf(
                    "{\"job_id\": \"%s\", \"phase\": \"done\"}\n",
                    watch_job_id.c_str());
                return 0;
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval_seconds));
        }
    }

    if (kind == "metricsz") {
        do {
            Result<std::string> text = client.serviceMetricsText();
            if (!text.ok()) {
                std::fprintf(stderr, "graphiti-client: %s\n",
                             text.error().message.c_str());
                return 3;
            }
            // The raw exposition document, pipeable into any scraper
            // tooling.
            std::fputs(text.value().c_str(), stdout);
            std::fflush(stdout);
            if (watch)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(interval_seconds));
        } while (watch);
        return 0;
    }

    if (isIntrospection(kind)) {
        do {
            Result<obs::json::Value> snapshot =
                kind == "stats"    ? client.serviceStats()
                : kind == "jobs"   ? client.serviceJobs()
                                   : client.serviceHealth();
            if (!snapshot.ok()) {
                std::fprintf(stderr, "graphiti-client: %s\n",
                             snapshot.error().message.c_str());
                return 3;
            }
            // One JSON document per poll: pretty for a single query,
            // one line per poll under --watch (pipeable).
            std::printf("%s\n",
                        snapshot.value().dump(watch ? -1 : 2).c_str());
            std::fflush(stdout);
            if (watch)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(interval_seconds));
        } while (watch);
        return 0;
    }

    JobSpec spec;
    spec.kind = kind;
    spec.options.threads = threads;
    if (budget_set)
        spec.options.verify_budget = budget;
    if (!dot_file.empty()) {
        std::ifstream in(dot_file);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n",
                         dot_file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        spec.circuit_dot = text.str();
    } else if (!benchmark.empty()) {
        Result<circuits::BenchmarkSpec> built =
            circuits::buildBenchmark(benchmark);
        if (!built.ok()) {
            std::fprintf(stderr, "%s\n",
                         built.error().message.c_str());
            return 2;
        }
        const ExprHigh& graph = built.value().df_ooo_input
                                    ? *built.value().df_ooo_input
                                    : built.value().df_io;
        spec.circuit_dot = printDot(graph);
        spec.options.num_tags = built.value().num_tags;
    } else if (kind != "ping") {
        std::fprintf(stderr,
                     "job kind \"%s\" needs --dot or --benchmark\n",
                     kind.c_str());
        return usage(argv[0]);
    }

    Result<served::JobResponse> response =
        client.request(spec, deadline_seconds, job_id);
    if (!response.ok()) {
        std::fprintf(stderr, "graphiti-client: %s\n",
                     response.error().message.c_str());
        return 3;
    }
    std::printf("%s\n", response.value().toJson().dump(2).c_str());
    return response.value().ok() ? 0 : 1;
}
