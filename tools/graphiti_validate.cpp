/**
 * @file
 * graphiti-validate: run the guard structural validator over circuits
 * and report diagnostics instead of letting malformed graphs crash
 * downstream passes.
 *
 * Without arguments every evaluation benchmark is validated: the DF-IO
 * circuit, the DF-OoO input variant when one exists, and (with
 * --post-ooo) the transformed circuit produced by the out-of-order
 * pipeline — so CI can assert that everything the compiler emits also
 * passes its own lint.
 *
 * Usage:
 *     graphiti-validate [benchmark...] [--dot FILE]... [--post-ooo]
 *                       [--json] [--quiet] [--list]
 *
 * Exit status: 0 when every circuit validated without errors
 * (warnings allowed), 1 on any validation error, 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_circuits/benchmarks.hpp"
#include "core/compiler.hpp"
#include "dot/dot.hpp"
#include "guard/validator.hpp"

namespace {

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [benchmark...] [--dot FILE]... [--post-ooo]\n"
        "          [--json] [--quiet] [--list]\n"
        "  benchmark   validate this table 2/3 benchmark (default: all)\n"
        "  --dot FILE  validate a dot file instead of a benchmark\n"
        "  --post-ooo  also run the out-of-order pipeline on each\n"
        "              benchmark and validate the transformed circuit\n"
        "  --json      print one JSON report per circuit\n"
        "  --quiet     print only failing circuits\n"
        "  --list      print available benchmark names and exit\n",
        argv0);
    return 2;
}

struct Outcome
{
    std::size_t circuits = 0;
    std::size_t failed = 0;
};

void
validateOne(const std::string& label, const graphiti::ExprHigh& graph,
            bool json, bool quiet, Outcome& outcome)
{
    using namespace graphiti;
    guard::ValidationReport report = guard::validateCircuit(graph);
    ++outcome.circuits;
    if (!report.ok())
        ++outcome.failed;
    if (quiet && report.ok())
        return;
    if (json) {
        obs::json::Value entry{obs::json::Object{}};
        entry.set("circuit", label);
        entry.set("ok", report.ok());
        entry.set("report", report.toJson());
        std::printf("%s\n", entry.dump().c_str());
        return;
    }
    std::printf("%-32s %s (%zu error%s, %zu diagnostic%s)\n",
                label.c_str(), report.ok() ? "ok" : "FAILED",
                report.errorCount(),
                report.errorCount() == 1 ? "" : "s",
                report.diagnostics().size(),
                report.diagnostics().size() == 1 ? "" : "s");
    for (const guard::Diagnostic& d : report.diagnostics())
        std::printf("    %s\n", d.toString().c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace graphiti;

    std::vector<std::string> benchmarks;
    std::vector<std::string> dot_files;
    bool post_ooo = false;
    bool json = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const std::string& name : circuits::benchmarkNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (arg == "--help" || arg == "-h")
            return usage(argv[0]);
        if (arg == "--post-ooo") {
            post_ooo = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--dot") {
            if (++i >= argc)
                return usage(argv[0]);
            dot_files.push_back(argv[i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            benchmarks.push_back(arg);
        }
    }
    if (benchmarks.empty() && dot_files.empty())
        benchmarks = circuits::benchmarkNames();

    Outcome outcome;

    for (const std::string& path : dot_files) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot open\n", path.c_str());
            ++outcome.circuits;
            ++outcome.failed;
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        Result<ExprHigh> parsed = parseDot(text.str());
        if (!parsed.ok()) {
            // A parse error is a diagnosis, not a crash: report it
            // like a failed validation.
            std::printf("%-32s FAILED (parse: %s)\n", path.c_str(),
                        parsed.error().message.c_str());
            ++outcome.circuits;
            ++outcome.failed;
            continue;
        }
        validateOne(path, parsed.value(), json, quiet, outcome);
    }

    for (const std::string& name : benchmarks) {
        Result<circuits::BenchmarkSpec> spec =
            circuits::buildBenchmark(name);
        if (!spec.ok()) {
            std::fprintf(stderr, "%s\n", spec.error().message.c_str());
            return 2;
        }
        validateOne(name + "/df-io", spec.value().df_io, json, quiet,
                    outcome);
        if (spec.value().df_ooo_input)
            validateOne(name + "/df-ooo-input",
                        *spec.value().df_ooo_input, json, quiet,
                        outcome);
        if (post_ooo) {
            const ExprHigh& input = spec.value().df_ooo_input
                                        ? *spec.value().df_ooo_input
                                        : spec.value().df_io;
            Compiler compiler;
            CompileOptions options;
            options.num_tags = spec.value().num_tags;
            Result<CompileReport> compiled =
                compiler.compileGraph(input, options);
            if (!compiled.ok()) {
                std::printf("%-32s FAILED (compile: %s)\n",
                            (name + "/post-ooo").c_str(),
                            compiled.error().message.c_str());
                ++outcome.circuits;
                ++outcome.failed;
                continue;
            }
            validateOne(name + "/post-ooo", compiled.value().graph,
                        json, quiet, outcome);
            if (!compiled.value().rollbacks.empty()) {
                std::printf("%-32s note: %zu rewrite(s) rolled back\n",
                            (name + "/post-ooo").c_str(),
                            compiled.value().rollbacks.size());
            }
        }
    }

    if (!quiet || outcome.failed > 0)
        std::printf("%zu circuit%s validated, %zu failed\n",
                    outcome.circuits, outcome.circuits == 1 ? "" : "s",
                    outcome.failed);
    return outcome.failed > 0 ? 1 : 0;
}
