/**
 * @file
 * graphiti-served: the long-running compile service (docs/service.md).
 *
 * Boots a Daemon on a unix-domain socket (and optionally loopback
 * TCP), serving compile / validate / verify / profile jobs with
 * admission control, per-job deadlines, fair-share preemption and a
 * crash-safe verdict store. Runs until SIGINT/SIGTERM; `--store DIR`
 * makes committed verdicts survive restarts — including kill -9.
 *
 * Observability (docs/service_observability.md): `--flight PATH`
 * arms the flight recorder — dumped on SIGUSR1, on a wedge, at exit,
 * and best-effort on fatal signals; `--log PATH` mirrors structured
 * JSON-lines logs; `--trace PATH` writes one service-level Perfetto
 * trace (per-job span trees keyed by correlation id) at shutdown.
 * Live introspection needs no files: `graphiti-client --stats`.
 *
 * Process isolation (docs/service.md, "Process isolation"):
 * `--isolate N` runs every compile in one of N sandboxed worker
 * processes with resource jails derived from the job's verification
 * budget — a crashing, OOMing or wedging job costs one worker respawn
 * and yields a structured error with a post-mortem artifact; the
 * daemon itself never dies with a job.
 *
 * Usage:
 *     graphiti-served --socket PATH [--tcp PORT] [--workers N]
 *                     [--isolate N] [--queue N] [--store DIR]
 *                     [--max-deadline S] [--wedge-grace S]
 *                     [--flight PATH] [--log PATH]
 *                     [--trace PATH] [--expose PORT]
 *
 * `--expose PORT` binds a loopback scrape endpoint serving the
 * `metricsz` document (Prometheus text exposition) to any HTTP
 * request; `curl localhost:PORT/metricsz` works.
 *
 * Exit status: 0 on clean shutdown, 2 on usage/startup errors.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "served/daemon.hpp"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump_flight{false};

void
onSignal(int)
{
    g_stop.store(true);
}

void
onDumpSignal(int)
{
    g_dump_flight.store(true);
}

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--tcp PORT] [--workers N] [--queue N]\n"
        "          [--isolate N] [--store DIR] [--max-deadline S]\n"
        "          [--wedge-grace S] [--flight PATH] [--log PATH]\n"
        "          [--trace PATH] [--expose PORT]\n"
        "  --socket PATH    unix-domain socket to listen on (required)\n"
        "  --tcp PORT       also listen on loopback TCP (0 = ephemeral)\n"
        "  --expose PORT    loopback metrics scrape endpoint "
        "(0 = ephemeral)\n"
        "  --workers N      worker threads (default 2)\n"
        "  --isolate N      run jobs in N sandboxed worker processes\n"
        "                   (crash containment + resource jails)\n"
        "  --queue N        waiting jobs before shedding (default 8)\n"
        "  --store DIR      persist governed verdicts (crash-safe)\n"
        "  --max-deadline S clamp client deadlines to S seconds\n"
        "  --wedge-grace S  grace before a stopped job counts as "
        "wedged\n"
        "  --flight PATH    flight-recorder dump target (SIGUSR1, "
        "wedge,\n"
        "                   exit, fatal signals)\n"
        "  --log PATH       mirror structured logs as JSON lines\n"
        "  --trace PATH     write a service-level Perfetto trace at "
        "shutdown\n",
        argv0);
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace graphiti;

    served::DaemonConfig config;
    std::string flight_path;
    std::string log_path;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (arg == "--socket") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.socket_path = v;
        } else if (arg == "--tcp") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.tcp_port = std::atoi(v);
        } else if (arg == "--expose") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.expose_port = std::atoi(v);
        } else if (arg == "--workers") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.workers =
                static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--isolate") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.isolate =
                static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--queue") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.queue_capacity =
                static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--store") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.store.dir = v;
        } else if (arg == "--max-deadline") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.max_deadline_seconds = std::atof(v);
        } else if (arg == "--wedge-grace") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.wedge_grace_seconds = std::atof(v);
        } else if (arg == "--flight") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            flight_path = v;
        } else if (arg == "--log") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            log_path = v;
        } else if (arg == "--trace") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            trace_path = v;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return usage(argv[0]);
        }
    }
    if (config.socket_path.empty())
        return usage(argv[0]);

    auto observer = std::make_shared<served::ServiceObserver>();
    config.scheduler.observer = observer;
    if (!flight_path.empty()) {
        observer->flight().setDumpPath(flight_path);
        // Best-effort post-mortem on exit / SIGSEGV / SIGABRT /
        // SIGBUS; kill -9 keeps only what an earlier dump wrote.
        obs::installCrashDump(&observer->flight());
    }
    if (!log_path.empty()) {
        Result<bool> opened = observer->log().openFile(log_path);
        if (!opened.ok()) {
            std::fprintf(stderr, "graphiti-served: %s\n",
                         opened.error().message.c_str());
            return 2;
        }
    }
    std::shared_ptr<obs::PerfettoTraceSink> trace;
    if (!trace_path.empty()) {
        trace = std::make_shared<obs::PerfettoTraceSink>();
        trace->setCapacity(1 << 16);
        observer->attachTrace(trace);
    }

    served::Daemon daemon(config);
    Result<bool> started = daemon.start();
    if (!started.ok()) {
        std::fprintf(stderr, "graphiti-served: %s\n",
                     started.error().message.c_str());
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGUSR1, onDumpSignal);

    std::printf("graphiti-served: listening on %s",
                config.socket_path.c_str());
    if (config.tcp_port >= 0)
        std::printf(" and tcp:%u", daemon.tcpPort());
    if (config.expose_port >= 0)
        std::printf(" (metrics on http://127.0.0.1:%u/metricsz)",
                    daemon.exposePort());
    std::printf("\n");
    std::fflush(stdout);

    while (!g_stop.load()) {
        if (g_dump_flight.exchange(false) && !flight_path.empty()) {
            // SIGUSR1: dump from the main loop, where allocation and
            // locking are safe (the handler only set a flag).
            Result<bool> dumped = daemon.dumpFlight();
            std::printf("graphiti-served: flight recorder %s %s\n",
                        dumped.ok() ? "dumped to" : "dump failed:",
                        dumped.ok()
                            ? flight_path.c_str()
                            : dumped.error().message.c_str());
            std::fflush(stdout);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    daemon.stop();
    if (!flight_path.empty())
        (void)daemon.dumpFlight();
    if (trace != nullptr) {
        Result<bool> wrote = trace->writeFile(trace_path);
        if (!wrote.ok())
            std::fprintf(stderr, "graphiti-served: trace: %s\n",
                         wrote.error().message.c_str());
    }
    served::SchedulerStats stats = daemon.scheduler().stats();
    std::printf("graphiti-served: shutting down (%s)\n",
                stats.toJson().dump().c_str());
    return 0;
}
