/**
 * @file
 * graphiti-served: the long-running compile service (docs/service.md).
 *
 * Boots a Daemon on a unix-domain socket (and optionally loopback
 * TCP), serving compile / validate / verify / profile jobs with
 * admission control, per-job deadlines, fair-share preemption and a
 * crash-safe verdict store. Runs until SIGINT/SIGTERM; `--store DIR`
 * makes committed verdicts survive restarts — including kill -9.
 *
 * Usage:
 *     graphiti-served --socket PATH [--tcp PORT] [--workers N]
 *                     [--queue N] [--store DIR] [--max-deadline S]
 *                     [--wedge-grace S]
 *
 * Exit status: 0 on clean shutdown, 2 on usage/startup errors.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "served/daemon.hpp"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--tcp PORT] [--workers N] [--queue N]\n"
        "          [--store DIR] [--max-deadline S] [--wedge-grace S]\n"
        "  --socket PATH    unix-domain socket to listen on (required)\n"
        "  --tcp PORT       also listen on loopback TCP (0 = ephemeral)\n"
        "  --workers N      worker threads (default 2)\n"
        "  --queue N        waiting jobs before shedding (default 8)\n"
        "  --store DIR      persist governed verdicts (crash-safe)\n"
        "  --max-deadline S clamp client deadlines to S seconds\n"
        "  --wedge-grace S  grace before a stopped job counts as "
        "wedged\n",
        argv0);
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace graphiti;

    served::DaemonConfig config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (arg == "--socket") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.socket_path = v;
        } else if (arg == "--tcp") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.tcp_port = std::atoi(v);
        } else if (arg == "--workers") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.workers =
                static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--queue") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.queue_capacity =
                static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--store") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.store.dir = v;
        } else if (arg == "--max-deadline") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.max_deadline_seconds = std::atof(v);
        } else if (arg == "--wedge-grace") {
            const char* v = value();
            if (v == nullptr)
                return usage(argv[0]);
            config.scheduler.wedge_grace_seconds = std::atof(v);
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return usage(argv[0]);
        }
    }
    if (config.socket_path.empty())
        return usage(argv[0]);

    served::Daemon daemon(config);
    Result<bool> started = daemon.start();
    if (!started.ok()) {
        std::fprintf(stderr, "graphiti-served: %s\n",
                     started.error().message.c_str());
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::printf("graphiti-served: listening on %s",
                config.socket_path.c_str());
    if (config.tcp_port >= 0)
        std::printf(" and tcp:%u", daemon.tcpPort());
    std::printf("\n");
    std::fflush(stdout);

    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    daemon.stop();
    served::SchedulerStats stats = daemon.scheduler().stats();
    std::printf("graphiti-served: shutting down (%s)\n",
                stats.toJson().dump().c_str());
    return 0;
}
