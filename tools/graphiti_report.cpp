/**
 * @file
 * graphiti-report: compile one benchmark with full observability and
 * write a metrics.json + trace.json + <name>.vcd bundle.
 *
 * The bundle covers all three instrumented layers in one run:
 *
 *  - rewrite/egraph: the out-of-order pipeline (rule applications,
 *    saturation growth) on the benchmark's DF-IO circuit;
 *  - refine: the catalog re-verification pass (states explored,
 *    simulation-game pairs) — the same bounded obligations the test
 *    suite discharges;
 *  - sim: the transformed circuit replaying the benchmark workload
 *    (fires, stalls, channel occupancy, VCD waveforms).
 *
 * With --provenance and/or --critpath the tool additionally profiles
 * the benchmark with full token provenance — once on the sequential
 * DF-IO circuit and once on the transformed circuit — and writes
 * provenance.json (the raw hop logs) and/or profile.json (per-token
 * critical paths, cycle attribution, reorder histograms). See
 * docs/profiling.md.
 *
 * Usage:
 *     graphiti-report [benchmark] [--out-dir DIR] [--tags N]
 *                     [--no-verify] [--provenance] [--critpath]
 *                     [--list]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench_circuits/benchmarks.hpp"
#include "bench_circuits/gcd.hpp"
#include "core/compiler.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "sim/sim.hpp"

namespace {

/** The figure-2 GCD circuit with its three-stream workload. */
graphiti::circuits::BenchmarkSpec
gcdSpec()
{
    using namespace graphiti;
    circuits::BenchmarkSpec spec;
    spec.name = "gcd";
    spec.num_tags = 8;
    spec.df_io = circuits::buildGcdInOrder();
    std::vector<Token> as, bs;
    for (auto [a, b] : {std::pair{1071, 462}, {987, 610}, {864, 528}}) {
        as.emplace_back(Value(a));
        bs.emplace_back(Value(b));
    }
    spec.inputs = {as, bs};
    spec.expected_outputs = 3;
    return spec;
}

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [benchmark] [--out-dir DIR] [--tags N]\n"
        "          [--no-verify] [--provenance] [--critpath] [--list]\n"
        "  benchmark    table 2/3 benchmark name (default: gcd)\n"
        "  --out-dir    directory for metrics.json / trace.json /\n"
        "               <benchmark>.vcd (default: .)\n"
        "  --tags       override the benchmark's tag count\n"
        "  --no-verify  skip catalog re-verification (faster; the\n"
        "               refine.* metrics stay zero)\n"
        "  --governed   run the resource-governed verification ladder\n"
        "               (transformed vs. DF-IO) and report the achieved\n"
        "               verification level in metrics.json\n"
        "  --provenance also write provenance.json (raw hop logs of\n"
        "               the sequential and transformed circuits)\n"
        "  --critpath   also write profile.json (critical paths,\n"
        "               cycle attribution, reorder histograms)\n"
        "  --list       print available benchmark names and exit\n",
        argv0);
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace graphiti;

    std::string benchmark = "gcd";
    std::string out_dir = ".";
    int tags = 0;
    bool verify = true;
    bool governed = false;
    bool want_provenance = false;
    bool want_critpath = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            std::printf("gcd\n");
            for (const std::string& name : circuits::benchmarkNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (arg == "--help" || arg == "-h")
            return usage(argv[0]);
        if (arg == "--no-verify") {
            verify = false;
        } else if (arg == "--governed") {
            governed = true;
        } else if (arg == "--provenance") {
            want_provenance = true;
        } else if (arg == "--critpath") {
            want_critpath = true;
        } else if (arg == "--out-dir") {
            if (++i >= argc)
                return usage(argv[0]);
            out_dir = argv[i];
        } else if (arg == "--tags") {
            if (++i >= argc)
                return usage(argv[0]);
            tags = std::atoi(argv[i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            benchmark = arg;
        }
    }

    Result<circuits::BenchmarkSpec> spec =
        benchmark == "gcd" ? Result<circuits::BenchmarkSpec>(gcdSpec())
                           : circuits::buildBenchmark(benchmark);
    if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.error().message.c_str());
        return 1;
    }

    auto scope = std::make_shared<obs::Scope>();
    auto perfetto = std::make_shared<obs::PerfettoTraceSink>();
    auto vcd = std::make_shared<obs::VcdWriter>(benchmark);
    scope->attachTrace(perfetto);
    scope->attachVcd(vcd);

    // Compile (rewrite + egraph metrics; refine metrics when the
    // catalog obligations are re-discharged).
    Compiler compiler;
    CompileOptions options;
    options.num_tags = tags > 0 ? tags : spec.value().num_tags;
    options.verify_rewrites = verify;
    options.governed_verify = governed;
    options.obs = scope;
    Result<CompileReport> compiled =
        compiler.compileGraph(spec.value().df_io, options);
    if (!compiled.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     compiled.error().message.c_str());
        return 1;
    }
    if (governed) {
        std::printf("governed verification: %s%s%s\n",
                    compiled.value().verification_level.c_str(),
                    compiled.value().degradation_reason.empty()
                        ? ""
                        : " — ",
                    compiled.value().degradation_reason.c_str());
    }

    // Simulate the transformed circuit on the benchmark workload
    // (sim metrics, Perfetto events, VCD waveforms).
    sim::SimConfig sim_config;
    sim_config.obs = scope;
    Result<sim::Simulator> built = sim::Simulator::build(
        compiled.value().graph,
        compiler.environment().functionsPtr(), sim_config);
    if (!built.ok()) {
        std::fprintf(stderr, "sim build: %s\n",
                     built.error().message.c_str());
        return 1;
    }
    sim::Simulator simulator = built.take();
    for (const auto& [name, data] : spec.value().memories)
        simulator.setMemory(name, data);
    Result<sim::SimResult> ran = simulator.run(
        spec.value().inputs, spec.value().expected_outputs,
        spec.value().serial_io);
    if (!ran.ok()) {
        std::fprintf(stderr, "sim run: %s\n",
                     ran.error().message.c_str());
        return 1;
    }

    // The bundle.
    namespace json = obs::json;
    json::Value metrics{json::Object{}};
    metrics.set("benchmark", benchmark);
    metrics.set("compile", compiled.value().toJson());
    json::Value sim_summary{json::Object{}};
    sim_summary.set("cycles", ran.value().cycles);
    json::Value out_counts{json::Array{}};
    for (const auto& port : ran.value().outputs)
        out_counts.push(port.size());
    sim_summary.set("outputs_per_port", std::move(out_counts));
    metrics.set("sim", std::move(sim_summary));
    metrics.set("metrics", scope->metrics().toJson());

    std::string metrics_path = out_dir + "/metrics.json";
    std::string trace_path = out_dir + "/trace.json";
    std::string vcd_path = out_dir + "/" + benchmark + ".vcd";
    Result<bool> wrote = json::writeFile(metrics_path, metrics);
    if (wrote.ok())
        wrote = perfetto->writeFile(trace_path);
    if (wrote.ok())
        wrote = vcd->writeFile(vcd_path);
    if (!wrote.ok()) {
        std::fprintf(stderr, "write: %s\n",
                     wrote.error().message.c_str());
        return 1;
    }

    std::printf("%s: %zu cycles, %zu trace events, %zu signals\n",
                benchmark.c_str(), ran.value().cycles,
                perfetto->numEvents(), vcd->numSignals());
    std::printf("  %s\n  %s\n  %s\n", metrics_path.c_str(),
                trace_path.c_str(), vcd_path.c_str());

    if (!want_provenance && !want_critpath)
        return 0;

    // Profile both ends of the transformation: the sequential DF-IO
    // circuit (no tagger; reorder histogram degenerate) and the
    // transformed circuit (tagged; out-of-order returns show up).
    faults::Workload workload;
    workload.memories = spec.value().memories;
    workload.inputs = spec.value().inputs;
    workload.expected_outputs = spec.value().expected_outputs;
    workload.serial_io = spec.value().serial_io;

    struct Run
    {
        const char* key;
        const ExprHigh* graph;
    };
    const Run runs[] = {{"sequential", &spec.value().df_io},
                        {"transformed", &compiled.value().graph}};

    json::Value provenance{json::Object{}};
    json::Value profile{json::Object{}};
    provenance.set("benchmark", benchmark);
    profile.set("benchmark", benchmark);
    for (const Run& r : runs) {
        Result<ProfileBundle> bundle =
            compiler.profileRun(*r.graph, workload);
        if (!bundle.ok()) {
            std::fprintf(stderr, "profile (%s): %s\n", r.key,
                         bundle.error().message.c_str());
            return 1;
        }
        if (want_provenance)
            provenance.set(r.key, bundle.value().log.toJson());
        if (want_critpath)
            profile.set(r.key, bundle.value().report.toJson());
        const obs::CritPathReport& rep = bundle.value().report;
        std::printf(
            "  %s: %llu cycles attributed (compute %llu, queue wait "
            "%llu, backpressure %llu), reorder %s\n",
            r.key,
            static_cast<unsigned long long>(rep.totals.total()),
            static_cast<unsigned long long>(rep.totals.compute),
            static_cast<unsigned long long>(rep.totals.queue_wait),
            static_cast<unsigned long long>(rep.totals.backpressure),
            rep.reorder.degenerate() ? "in-order" : "out-of-order");
    }

    if (want_provenance) {
        std::string path = out_dir + "/provenance.json";
        Result<bool> w = json::writeFile(path, provenance);
        if (!w.ok()) {
            std::fprintf(stderr, "write: %s\n", w.error().message.c_str());
            return 1;
        }
        std::printf("  %s\n", path.c_str());
    }
    if (want_critpath) {
        std::string path = out_dir + "/profile.json";
        Result<bool> w = json::writeFile(path, profile);
        if (!w.ok()) {
            std::fprintf(stderr, "write: %s\n", w.error().message.c_str());
            return 1;
        }
        std::printf("  %s\n", path.c_str());
    }
    return 0;
}
