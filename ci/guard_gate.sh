#!/usr/bin/env bash
# Guarded-pipeline CI gate: the structural validator, transactional
# rewrites, and the resource-governed verification ladder must hold.
#
#  1. Regular build: tier-1 passes, the guard-labeled suite passes
#     (broken-circuit corpus, fuzz determinism, governor ladder), and
#     graphiti-validate accepts every benchmark circuit before AND
#     after the out-of-order pipeline with zero rollbacks.
#  2. Governed report smoke: graphiti-report --governed reaches the
#     "full" rung on the gcd benchmark and records it in metrics.json.
#  3. Sanitizer build: the guard suite (validator fuzz included) and
#     the core suite run clean under ASan + UBSan.
#
# Usage: ci/guard_gate.sh [build-dir-prefix]   (default: build-guard)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-guard}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== regular configuration =="
cmake -B "${PREFIX}" -S .
cmake --build "${PREFIX}" -j "${JOBS}"
(cd "${PREFIX}" && ctest --output-on-failure -j "${JOBS}")
(cd "${PREFIX}" && ctest -L guard --output-on-failure)

echo "== benchmark validation (pre + post pipeline) =="
"${PREFIX}/tools/graphiti-validate"
"${PREFIX}/tools/graphiti-validate" --post-ooo

echo "== malformed input is a diagnostic, not a crash =="
BAD="$(mktemp --suffix=.dot)"
cat > "${BAD}" <<'EOF'
digraph broken {
  a [type = "input", index = "0"];
  j [type = "join"];
  r [type = "output", index = "0"];
  a -> j [to = "in0"];
  j -> r [from = "out0"];
}
EOF
if "${PREFIX}/tools/graphiti-validate" --dot "${BAD}" --quiet; then
    echo "FAIL: validator accepted a dangling join input"
    exit 1
fi
echo "OK: dangling input rejected with exit 1"
rm -f "${BAD}"

echo "== governed verification smoke =="
OUT="$(mktemp -d)"
"${PREFIX}/tools/graphiti-report" gcd --no-verify --governed \
    --out-dir "${OUT}"
python3 - "$OUT" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1] + "/metrics.json"))
compile_report = m["compile"]
assert compile_report["validation"]["errors"] == 0
assert compile_report["rollbacks"] == []
level = compile_report["verification_level"]
assert level == "full", "expected full verification, got " + level
assert compile_report["verification"]["refines"] is True
print("OK: governed gcd compile verified at level 'full'")
EOF

echo "== sanitizer configuration (ASan + UBSan) =="
cmake -B "${PREFIX}-asan" -S . -DGRAPHITI_SANITIZE=address,undefined
cmake --build "${PREFIX}-asan" -j "${JOBS}"
(cd "${PREFIX}-asan" && ctest -L guard --output-on-failure)
(cd "${PREFIX}-asan" && ctest -R "^(Compiler|Validator)" \
    --output-on-failure)

echo "guard gate: all checks passed"
