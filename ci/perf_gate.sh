#!/usr/bin/env bash
# Performance-regression gate: run bench_table2 --json from an existing
# build and compare its deterministic outputs (cycles, exec_time_ns,
# lut/ff/dsp) against the checked-in BENCH_baseline.json.
#
# Warn-only by default; set PERF_GATE_ENFORCE=1 (or pass --enforce as
# the second argument) to make regressions fail the gate. Regenerate
# the baseline after an intentional perf change with:
#
#     build/bench/bench_table2 --json BENCH_baseline.json
#
# Every run also appends a one-line timestamped summary of the
# whitelisted metrics to BENCH_history.jsonl; perf_compare.py warns
# (never fails) when a metric grew on three consecutive runs — the
# slow drift a per-run threshold cannot see. The history file is
# per-machine working state, not a checked-in artifact.
#
# Usage: ci/perf_gate.sh [build-dir] [--enforce]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BASELINE="BENCH_baseline.json"
BENCH="${BUILD}/bench/bench_table2"

if [ ! -f "${BASELINE}" ]; then
    echo "perf gate: ${BASELINE} missing; generate it with" \
         "'${BENCH} --json ${BASELINE}'"
    exit 2
fi
if [ ! -x "${BENCH}" ]; then
    echo "perf gate: ${BENCH} not built (configure+build ${BUILD} first)"
    exit 2
fi

CURRENT="$(mktemp)"
trap 'rm -f "${CURRENT}"' EXIT
"${BENCH}" --json "${CURRENT}" > /dev/null

python3 ci/perf_compare.py "${BASELINE}" "${CURRENT}" \
    --history BENCH_history.jsonl "${@:2}"
