#!/usr/bin/env bash
# Performance-regression gate: run bench_table2 --json from an existing
# build and compare its deterministic outputs (cycles, exec_time_ns,
# lut/ff/dsp) against the checked-in BENCH_baseline.json.
#
# Warn-only by default; set PERF_GATE_ENFORCE=1 (or pass --enforce as
# the second argument) to make regressions fail the gate. Exception:
# verify_resources.peak_bytes_per_state — the verification core's
# memory footprint per explored state (docs/parallelism.md, "Compact
# encoding") — FAILS the gate on a >10% regression even without
# enforcement. Regenerate the baseline after an intentional perf
# change with:
#
#     build/bench/bench_table2 --json BENCH_baseline.json
#
# Every run also appends a one-line timestamped summary of the
# whitelisted metrics to BENCH_history.jsonl; perf_compare.py warns
# (never fails) when a metric grew on three consecutive runs — the
# slow drift a per-run threshold cannot see. The history file is
# per-machine working state, not a checked-in artifact.
#
# Isolation overhead (docs/service.md, "Process isolation"): the gate
# also runs bench_served back-to-back in-thread and --isolate with the
# same seed and load, records the verify p50/p99 overhead ratios and
# the crash-storm answered rate to BENCH_history.jsonl, and warns when
# the ratio blows the 2x budget (wall-clock ratios are advisory, never
# blocking — only the same-machine back-to-back pairing makes them
# meaningful at all).
#
# Usage: ci/perf_gate.sh [build-dir] [--enforce]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BASELINE="BENCH_baseline.json"
BENCH="${BUILD}/bench/bench_table2"

if [ ! -f "${BASELINE}" ]; then
    echo "perf gate: ${BASELINE} missing; generate it with" \
         "'${BENCH} --json ${BASELINE}'"
    exit 2
fi
if [ ! -x "${BENCH}" ]; then
    echo "perf gate: ${BENCH} not built (configure+build ${BUILD} first)"
    exit 2
fi

CURRENT="$(mktemp)"
INTHREAD="$(mktemp)"
ISOLATED="$(mktemp)"
STORM="$(mktemp)"
trap 'rm -f "${CURRENT}" "${INTHREAD}" "${ISOLATED}" "${STORM}"' EXIT
"${BENCH}" --json "${CURRENT}" > /dev/null

python3 ci/perf_compare.py "${BASELINE}" "${CURRENT}" \
    --history BENCH_history.jsonl "${@:2}"

# --- Isolation overhead: in-thread vs --isolate, same seed and load,
# back to back on the same machine, plus a crash-storm answered-rate
# probe. Advisory: records to history and warns past 2x, never fails.
SERVED="${BUILD}/bench/bench_served"
if [ -x "${SERVED}" ]; then
    "${SERVED}" --clients 2 --requests 4 --workers 2 \
        --json "${INTHREAD}" > /dev/null
    "${SERVED}" --clients 2 --requests 4 --workers 2 --isolate 2 \
        --json "${ISOLATED}" > /dev/null
    "${SERVED}" --clients 2 --requests 6 --workers 2 --isolate 2 \
        --crash-rate 0.3 --json "${STORM}" > /dev/null
    python3 - "${INTHREAD}" "${ISOLATED}" "${STORM}" <<'EOF'
import datetime, json, sys
inthread, isolated, storm = (json.load(open(p)) for p in sys.argv[1:4])
def p(doc, q):
    return float(doc["latency"]["verify"][q])
metrics = {}
for q in ("p50", "p99"):
    base, iso = p(inthread, q), p(isolated, q)
    ratio = iso / base if base > 0 else 0.0
    metrics[f"served.isolate.overhead_{q}"] = round(ratio, 3)
    tag = "OK" if ratio < 2.0 else "WARN: blew the 2x budget"
    print(f"perf gate: isolate overhead {q}: {base:.1f}ms -> "
          f"{iso:.1f}ms ({ratio:.2f}x) [{tag}]")
metrics["served.isolate.answered_rate"] = storm.get("answered_rate", 0.0)
crashes = storm.get("workers", {}).get("crashes", 0)
print(f"perf gate: crash storm: answered rate "
      f"{100.0 * metrics['served.isolate.answered_rate']:.1f}% "
      f"through {crashes} worker death(s)")
entry = {"ts": datetime.datetime.now(datetime.timezone.utc)
               .strftime("%Y-%m-%dT%H:%M:%SZ"),
         "metrics": metrics}
with open("BENCH_history.jsonl", "a") as f:
    f.write(json.dumps(entry, sort_keys=True,
                       separators=(",", ":")) + "\n")
EOF
else
    echo "perf gate: skip: ${SERVED} not built (isolation overhead" \
         "not measured)"
fi
