#!/usr/bin/env bash
# Observability CI gate: both GRAPHITI_OBS configurations must hold
# their side of the zero-cost contract.
#
#  1. OFF build: tier-1 passes, the hot-layer objects contain no
#     instrumentation call sites (checked by metric-name strings), the
#     served objects contain no service log/span event names, and the
#     served-labelled suite still passes — the introspection verbs and
#     the byte-identity contract are functional without the plane.
#  2. ON build: tier-1 passes, including the obs-labeled suite with
#     the <2x instrumented-gcd overhead assertion, and
#     graphiti-report produces a valid gcd bundle.
#
# Usage: ci/obs_gate.sh [build-dir-prefix]   (default: build-ci)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== OFF configuration =="
cmake -B "${PREFIX}-off" -S . -DGRAPHITI_OBS=OFF
cmake --build "${PREFIX}-off" -j "${JOBS}"

# Zero-cost check: with instrumentation compiled out, the metric-name
# literals must not survive in the hot-layer objects.
for probe in "rewrite.match_attempts:libgraphiti_rewrite.a" \
             "egraph.saturations:libgraphiti_egraph.a" \
             "refine.states_per_second:libgraphiti_refine.a" \
             "refine.peak_bytes:libgraphiti_refine.a" \
             "guard.verify.peak_bytes:libgraphiti_guard.a" \
             "sim.tokens_in_flight_max:libgraphiti_sim.a"; do
    name="${probe%%:*}"
    lib="${probe##*:}"
    path="$(find "${PREFIX}-off" -name "${lib}" | head -1)"
    if [ -z "${path}" ]; then
        echo "FAIL: ${lib} not built"
        exit 1
    fi
    if strings "${path}" | grep -q "${name}"; then
        echo "FAIL: OFF build still contains '${name}' in ${lib}"
        exit 1
    fi
done
echo "OK: no instrumentation strings in OFF hot-layer objects"

# Service plane (docs/service_observability.md): the scheduler's
# structured-log event names and span names live only behind
# GRAPHITI_SVC_* macros / GRAPHITI_OBS_ENABLED blocks, so an OFF build
# must strip every one of them from the served objects.
SERVED_LIB="$(find "${PREFIX}-off" -name libgraphiti_served.a | head -1)"
if [ -z "${SERVED_LIB}" ]; then
    echo "FAIL: libgraphiti_served.a not built"
    exit 1
fi
for name in "job.admit" "job.shed" "job.preempt" "job.wedge" \
            "job.done" "queue-wait"; do
    if strings "${SERVED_LIB}" | grep -qF "${name}"; then
        echo "FAIL: OFF build still contains '${name}' in the served" \
             "objects"
        exit 1
    fi
done
echo "OK: no service log/span strings in OFF served objects"

(cd "${PREFIX}-off" && ctest --output-on-failure -j "${JOBS}")
# Explicitly: the compile service keeps its whole contract (framing,
# admission, byte identity, introspection verbs) with the plane
# compiled out.
(cd "${PREFIX}-off" && ctest -L served --output-on-failure)

# metricsz under OFF: the verb still answers — all zeros, but the
# alias families are present, so a scraper pointed at an OFF-build
# fleet sees flat lines instead of scrape errors
# (docs/verification_observability.md).
echo "== OFF metricsz zeros smoke =="
OFF_SOCK="$(mktemp -u /tmp/graphiti-obs-gate-XXXXXX.sock)"
"${PREFIX}-off/tools/graphiti-served" --socket "${OFF_SOCK}" \
    --workers 1 &
OFF_PID=$!
trap 'kill "${OFF_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    [ -S "${OFF_SOCK}" ] && break
    sleep 0.1
done
OFF_METRICS="$("${PREFIX}-off/tools/graphiti-client" \
    --socket "${OFF_SOCK}" --metricsz)"
kill "${OFF_PID}" 2>/dev/null || true
wait "${OFF_PID}" 2>/dev/null || true
trap - EXIT
echo "${OFF_METRICS}" | grep -q "^graphiti_verify_states_total 0$" || {
    echo "FAIL: OFF metricsz missing 'graphiti_verify_states_total 0'"
    exit 1
}
echo "${OFF_METRICS}" | grep -q "^graphiti_verify_peak_bytes 0$" || {
    echo "FAIL: OFF metricsz missing 'graphiti_verify_peak_bytes 0'"
    exit 1
}
echo "OK: OFF build answers metricsz with zeroed alias families"

echo "== ON configuration =="
cmake -B "${PREFIX}-on" -S . -DGRAPHITI_OBS=ON
cmake --build "${PREFIX}-on" -j "${JOBS}"
# Full tier-1; the obs label carries ObsGcd.OverheadUnderTwoTimes.
(cd "${PREFIX}-on" && ctest --output-on-failure -j "${JOBS}")
(cd "${PREFIX}-on" && ctest -L obs --output-on-failure)

echo "== gcd bundle smoke =="
OUT="$(mktemp -d)"
"${PREFIX}-on/tools/graphiti-report" gcd --out-dir "${OUT}"
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
m = json.load(open(out + "/metrics.json"))
counters = m["metrics"]["counters"]
for layer in ("sim.", "rewrite.", "egraph.", "refine."):
    assert any(k.startswith(layer) and v > 0
               for k, v in counters.items()), layer + "* all zero"
trace = json.load(open(out + "/trace.json"))
assert len(trace["traceEvents"]) > 0
vcd = open(out + "/gcd.vcd").read()
assert "$enddefinitions $end" in vcd and "$timescale" in vcd
print("OK: bundle valid (all three layers nonzero)")
EOF

echo "== gcd profile smoke =="
"${PREFIX}-on/tools/graphiti-report" gcd --no-verify \
    --out-dir "${OUT}" --provenance --critpath
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
p = json.load(open(out + "/profile.json"))
for key in ("sequential", "transformed"):
    rep = p[key]
    tokens = [t for t in rep["tokens"] if not t.get("truncated")]
    assert tokens, key + ": no complete tokens profiled"
    for t in tokens:
        a = t["attribution"]
        s = a["compute"] + a["queue_wait"] + a["backpressure"]
        assert s == t["latency"], \
            f"{key}: attribution {s} != latency {t['latency']}"
    degenerate = all(int(k) == 0 for k in rep["reorder"]["buckets"])
    assert degenerate == (key == "sequential"), \
        key + ": unexpected reorder histogram shape"
prov = json.load(open(out + "/provenance.json"))
assert prov["transformed"]["firings"], "empty transformed hop log"
print("OK: profile valid (attribution exact; reorder degenerate only "
      "on the sequential circuit)")
EOF

echo "== perf gate (warn-only) =="
ci/perf_gate.sh "${PREFIX}-on"

echo "obs gate: all checks passed"
