#!/usr/bin/env python3
"""Compare a bench_table2 --json report against BENCH_baseline.json.

Deterministic-field whitelist
-----------------------------
Only deterministic model outputs are compared; every field outside the
whitelist is ignored. The gate must never flake on machine speed, so
the rule is: a field is compared if and only if rerunning the binary
on any machine yields the same value.

  per-flow, threshold-compared (METRICS, smaller is better):
    cycles        simulator cycle count (deterministic model output)
    exec_time_ns  cycles x modeled clock period
    lut, ff, dsp  area-model columns
  top-level "verify" object, compared EXACTLY (VERIFY_EXACT — these
  come from the governed verification probe, which is a pure function
  of circuit + budget, so any difference is a real behavior change,
  not noise):
    level, verify_states, reachable_pairs, cache_hits, cache_misses,
    second_compile_cache_hit

  explicitly ignored wall-clock noise (WALL_CLOCK_FIELDS):
    measure_seconds  per-flow simulation wall time
    phases           per-phase wall times of the run
    clock_period_ns  is compared only via exec_time_ns

  explicitly ignored resource telemetry (RESOURCE_FIELDS):
    verify_resources  peak bytes are stable, but the pool occupancy
                      split (chunks per lane, steals, idle time) is
                      scheduling noise — the object stays out of the
                      threshold comparison and exists for humans
                      reading the report
                      (docs/verification_observability.md), with one
                      exception below

  memory-efficiency gate (RESOURCE_HARD, always blocking):
    verify_resources.peak_bytes_per_state is deterministic (size-based
    byte accounting over a fixed budget; docs/parallelism.md, "Compact
    encoding") and a >10% regression FAILS the gate even without
    --enforce — memory-footprint regressions in the verification core
    are never warn-only. states_per_second is wall-clock and is only
    recorded into the history trajectory, never compared.

A threshold metric regresses when it grows more than --threshold
percent over the baseline. Baseline values <= 0 are skipped (nothing
meaningful to compare against), as are benchmarks or flows absent from
either side — but each skip is reported so a silently shrinking
benchmark set cannot pass the gate.

Bench trajectory (--history PATH): after comparing, append one
timestamped line summarizing the current run's whitelisted metrics to
PATH (JSON lines), and WARN on any metric that grew on each of the
last three recorded runs — a slow monotone drift that per-run
thresholds never catch. History warnings never fail the gate, even
under --enforce: the signal is "look at the trend", not "block".

Exit status: 0 when clean, or when regressions were found but the gate
is warn-only (the default); 1 when regressions were found and
enforcement is on (--enforce or PERF_GATE_ENFORCE=1); 2 on bad input.
"""

import argparse
import datetime
import json
import os
import sys

FLOWS = ("df_io", "df_ooo", "graphiti", "vericert")
METRICS = ("cycles", "exec_time_ns", "lut", "ff", "dsp")
# Deterministic fields of the top-level "verify" probe: compared for
# exact equality, since the governed verdict is thread-count and
# machine independent (docs/parallelism.md).
VERIFY_EXACT = ("level", "verify_states", "reachable_pairs",
                "cache_hits", "cache_misses", "second_compile_cache_hit")
# Wall-clock fields that must never be compared (run-to-run noise).
WALL_CLOCK_FIELDS = frozenset({"measure_seconds", "phases"})
# Resource-telemetry objects that ride next to the deterministic ones
# and must never be compared (pool occupancy is scheduling noise).
RESOURCE_FIELDS = frozenset({"verify_resources"})
# verify_resources fields recorded into the history trajectory
# (memory-efficiency figures of the compact state encoding).
RESOURCE_HISTORY = ("peak_bytes_per_state", "states_per_second")
# The always-blocking subset of RESOURCE_HISTORY: deterministic
# (size-based accounting), so a regression is a real encoding change,
# and memory-footprint regressions must never pass as warn-only.
RESOURCE_HARD = ("peak_bytes_per_state",)
RESOURCE_HARD_THRESHOLD = 10.0
# History keys where growth is an improvement (throughput), exempt
# from the monotone-drift warning.
BIGGER_IS_BETTER = frozenset({"verify_resources.states_per_second"})
assert WALL_CLOCK_FIELDS.isdisjoint(METRICS)
assert WALL_CLOCK_FIELDS.isdisjoint(VERIFY_EXACT)
assert RESOURCE_FIELDS.isdisjoint(VERIFY_EXACT)
assert set(RESOURCE_HARD) <= set(RESOURCE_HISTORY)
# Consecutive increases (runs, including the current one) that count
# as a monotone drift worth warning about.
HISTORY_RUNS = 3


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def index_benchmarks(doc):
    return {b.get("name", f"#{i}"): b
            for i, b in enumerate(doc.get("benchmarks", []))}


def compare_verify(base_doc, cur_doc, regressions, skipped):
    """Exact comparison of the deterministic verification probe."""
    base = base_doc.get("verify")
    cur = cur_doc.get("verify")
    if not isinstance(base, dict):
        skipped.append("verify: missing from baseline; regenerate "
                       "BENCH_baseline.json to cover it")
        return 0
    if not isinstance(cur, dict):
        skipped.append("verify: missing from current run")
        return 0
    compared = 0
    for field in VERIFY_EXACT:
        b = base.get(field)
        c = cur.get(field)
        if b is None:
            skipped.append(f"verify.{field}: missing from baseline")
            continue
        if c is None:
            skipped.append(f"verify.{field}: missing from current run")
            continue
        compared += 1
        if b != c:
            regressions.append(
                f"verify.{field}: {b!r} -> {c!r} (deterministic field "
                "must match exactly)")
    return compared


def compare_resources(base_doc, cur_doc, hard_failures, skipped):
    """Memory-efficiency gate over verify_resources.

    peak_bytes_per_state is deterministic (size-based accounting over
    a fixed budget), so a >RESOURCE_HARD_THRESHOLD% growth lands in
    hard_failures — which fail the gate even without --enforce.
    """
    base = base_doc.get("verify_resources")
    cur = cur_doc.get("verify_resources")
    if not isinstance(base, dict):
        skipped.append("verify_resources: missing from baseline; "
                       "regenerate BENCH_baseline.json to cover it")
        return 0
    if not isinstance(cur, dict):
        skipped.append("verify_resources: missing from current run")
        return 0
    compared = 0
    for field in RESOURCE_HARD:
        b = base.get(field)
        c = cur.get(field)
        if not isinstance(b, (int, float)) or b <= 0:
            skipped.append(f"verify_resources.{field}: missing from "
                           "baseline; regenerate BENCH_baseline.json "
                           "to cover it")
            continue
        if not isinstance(c, (int, float)):
            skipped.append(f"verify_resources.{field}: missing from "
                           "current run")
            continue
        compared += 1
        delta = (c - b) / b * 100.0
        if delta > RESOURCE_HARD_THRESHOLD:
            hard_failures.append(
                f"verify_resources.{field}: {b:g} -> {c:g} "
                f"(+{delta:.1f}% > {RESOURCE_HARD_THRESHOLD:g}%)")
    return compared


def flatten_metrics(doc):
    """The whitelisted metrics of one report as a flat {key: number}.

    Keys are dotted (`bicg.graphiti.cycles`, `verify.verify_states`);
    only numeric values land here, so history comparison is a plain
    number-to-number affair.
    """
    flat = {}
    for name, bench in sorted(index_benchmarks(doc).items()):
        for flow in FLOWS:
            flow_obj = bench.get(flow)
            if not isinstance(flow_obj, dict):
                continue
            for metric in METRICS:
                value = flow_obj.get(metric)
                if isinstance(value, (int, float)):
                    flat[f"{name}.{flow}.{metric}"] = value
    verify = doc.get("verify")
    if isinstance(verify, dict):
        for field in VERIFY_EXACT:
            value = verify.get(field)
            if isinstance(value, (int, float)) and \
                    not isinstance(value, bool):
                flat[f"verify.{field}"] = value
    resources = doc.get("verify_resources")
    if isinstance(resources, dict):
        for field in RESOURCE_HISTORY:
            value = resources.get(field)
            if isinstance(value, (int, float)) and \
                    not isinstance(value, bool):
                flat[f"verify_resources.{field}"] = value
    return flat


def update_history(path, cur_doc):
    """Append the current run to the trajectory file and return
    warning lines for metrics that grew on each of the last
    HISTORY_RUNS runs."""
    entries = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # a corrupt line never wedges the gate
                if isinstance(entry, dict) and \
                        isinstance(entry.get("metrics"), dict):
                    entries.append(entry)
    except OSError:
        pass  # first run: no history yet

    current = {
        "ts": datetime.datetime.now(datetime.timezone.utc)
              .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "metrics": flatten_metrics(cur_doc),
    }
    window = entries[-(HISTORY_RUNS - 1):] + [current]

    warnings = []
    if len(window) == HISTORY_RUNS:
        for key in sorted(current["metrics"]):
            if key in BIGGER_IS_BETTER:
                continue  # growth there is improvement, not drift
            values = [e["metrics"].get(key) for e in window]
            if any(not isinstance(v, (int, float)) for v in values):
                continue
            if all(values[i] < values[i + 1]
                   for i in range(len(values) - 1)):
                trend = " -> ".join(f"{v:g}" for v in values)
                warnings.append(
                    f"{key}: grew {HISTORY_RUNS} runs straight "
                    f"({trend})")

    try:
        with open(path, "a") as f:
            f.write(json.dumps(current, sort_keys=True,
                               separators=(",", ":")) + "\n")
    except OSError as e:
        warnings.append(f"cannot append to {path}: {e}")
    return warnings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in BENCH_baseline.json")
    parser.add_argument("current", help="fresh bench_table2 --json output")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("--enforce", action="store_true",
                        help="fail (exit 1) on regressions instead of "
                             "warning; PERF_GATE_ENFORCE=1 also works")
    parser.add_argument("--history", metavar="PATH",
                        help="append a one-line summary of this run to "
                             "PATH (JSON lines) and warn on metrics "
                             "that grew three runs straight")
    args = parser.parse_args()

    enforce = args.enforce or \
        os.environ.get("PERF_GATE_ENFORCE", "0") == "1"
    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    base = index_benchmarks(base_doc)
    cur = index_benchmarks(cur_doc)

    regressions = []
    improvements = 0
    compared = 0
    skipped = []

    for name in sorted(base):
        if name not in cur:
            skipped.append(f"benchmark {name}: missing from current run")
            continue
        for flow in FLOWS:
            b_flow = base[name].get(flow)
            c_flow = cur[name].get(flow)
            if not isinstance(b_flow, dict):
                continue
            if not isinstance(c_flow, dict):
                skipped.append(f"{name}.{flow}: missing from current run")
                continue
            for metric in METRICS:
                b = b_flow.get(metric)
                c = c_flow.get(metric)
                if not isinstance(b, (int, float)) or b <= 0:
                    continue
                if not isinstance(c, (int, float)):
                    skipped.append(f"{name}.{flow}.{metric}: "
                                   "missing from current run")
                    continue
                compared += 1
                delta = (c - b) / b * 100.0
                if delta > args.threshold:
                    regressions.append(
                        f"{name}.{flow}.{metric}: {b:g} -> {c:g} "
                        f"(+{delta:.1f}% > {args.threshold:g}%)")
                elif delta < -args.threshold:
                    improvements += 1
    for name in sorted(set(cur) - set(base)):
        skipped.append(f"benchmark {name}: new (no baseline); "
                       "regenerate BENCH_baseline.json to cover it")

    compared += compare_verify(base_doc, cur_doc, regressions, skipped)
    hard_failures = []
    compared += compare_resources(base_doc, cur_doc, hard_failures,
                                  skipped)

    if args.history:
        for line in update_history(args.history, cur_doc):
            print(f"perf gate: TREND WARNING: {line}")

    for line in skipped:
        print(f"perf gate: skip: {line}")
    print(f"perf gate: {compared} metrics compared, "
          f"{len(regressions)} regressions, "
          f"{len(hard_failures)} memory regressions, "
          f"{improvements} improvements beyond threshold")
    failed = False
    if regressions:
        for line in regressions:
            print(f"perf gate: REGRESSION: {line}")
        if enforce:
            failed = True
        else:
            print("perf gate: WARN only (set PERF_GATE_ENFORCE=1 or "
                  "pass --enforce to make this blocking)")
    if hard_failures:
        # Memory-footprint regressions in the verification core block
        # unconditionally — there is no warn-only mode for them.
        for line in hard_failures:
            print(f"perf gate: MEMORY REGRESSION: {line}")
        failed = True
    if failed:
        print("perf gate: FAIL")
        return 1
    if not regressions:
        print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
