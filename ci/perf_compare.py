#!/usr/bin/env python3
"""Compare a bench_table2 --json report against BENCH_baseline.json.

Only deterministic model outputs are compared — cycle counts, the
derived exec_time_ns (cycles x modeled clock period) and the area
columns (lut/ff/dsp). Wall-clock fields (measure_seconds, phases) are
ignored: they vary run to run and machine to machine.

A metric regresses when it grows more than --threshold percent over
the baseline (all compared metrics are smaller-is-better). Baseline
values <= 0 are skipped (nothing meaningful to compare against), as
are benchmarks or flows absent from either side — but each skip is
reported so a silently shrinking benchmark set cannot pass the gate.

Exit status: 0 when clean, or when regressions were found but the gate
is warn-only (the default); 1 when regressions were found and
enforcement is on (--enforce or PERF_GATE_ENFORCE=1); 2 on bad input.
"""

import argparse
import json
import os
import sys

FLOWS = ("df_io", "df_ooo", "graphiti", "vericert")
METRICS = ("cycles", "exec_time_ns", "lut", "ff", "dsp")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def index_benchmarks(doc):
    return {b.get("name", f"#{i}"): b
            for i, b in enumerate(doc.get("benchmarks", []))}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in BENCH_baseline.json")
    parser.add_argument("current", help="fresh bench_table2 --json output")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("--enforce", action="store_true",
                        help="fail (exit 1) on regressions instead of "
                             "warning; PERF_GATE_ENFORCE=1 also works")
    args = parser.parse_args()

    enforce = args.enforce or \
        os.environ.get("PERF_GATE_ENFORCE", "0") == "1"
    base = index_benchmarks(load(args.baseline))
    cur = index_benchmarks(load(args.current))

    regressions = []
    improvements = 0
    compared = 0
    skipped = []

    for name in sorted(base):
        if name not in cur:
            skipped.append(f"benchmark {name}: missing from current run")
            continue
        for flow in FLOWS:
            b_flow = base[name].get(flow)
            c_flow = cur[name].get(flow)
            if not isinstance(b_flow, dict):
                continue
            if not isinstance(c_flow, dict):
                skipped.append(f"{name}.{flow}: missing from current run")
                continue
            for metric in METRICS:
                b = b_flow.get(metric)
                c = c_flow.get(metric)
                if not isinstance(b, (int, float)) or b <= 0:
                    continue
                if not isinstance(c, (int, float)):
                    skipped.append(f"{name}.{flow}.{metric}: "
                                   "missing from current run")
                    continue
                compared += 1
                delta = (c - b) / b * 100.0
                if delta > args.threshold:
                    regressions.append(
                        f"{name}.{flow}.{metric}: {b:g} -> {c:g} "
                        f"(+{delta:.1f}% > {args.threshold:g}%)")
                elif delta < -args.threshold:
                    improvements += 1
    for name in sorted(set(cur) - set(base)):
        skipped.append(f"benchmark {name}: new (no baseline); "
                       "regenerate BENCH_baseline.json to cover it")

    for line in skipped:
        print(f"perf gate: skip: {line}")
    print(f"perf gate: {compared} metrics compared, "
          f"{len(regressions)} regressions, "
          f"{improvements} improvements beyond threshold")
    if regressions:
        for line in regressions:
            print(f"perf gate: REGRESSION: {line}")
        if enforce:
            print("perf gate: FAIL (enforcement on)")
            return 1
        print("perf gate: WARN only (set PERF_GATE_ENFORCE=1 or pass "
              "--enforce to make this blocking)")
        return 0
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
