#!/usr/bin/env bash
# Parallel-verification gate (docs/parallelism.md):
#
#   1. TSan sweep: build the `par`-labelled determinism tests with
#      -DGRAPHITI_SANITIZE=thread in a dedicated build tree and run
#      them under ThreadSanitizer. The tests pin every verdict to
#      byte-identical results at threads 1/2/8, so this doubles as the
#      data-race and the determinism check. test_state_encoding rides
#      in this leg so the interned state pool and the frontier spill
#      tier (docs/parallelism.md, "Compact encoding") get the same
#      race coverage as the worker lanes themselves.
#   2. Scaling probe: run bench_refine_checker's BM_ThreadScaling at
#      threads=1 and threads=4 from the regular build and require a
#      >= 2x real-time speedup — enforced only when the machine has
#      at least 4 hardware threads (on smaller machines the probe
#      still runs, warn-only, and the deterministic verify_states
#      counter is still required to match).
#   3. Perf gate: ci/perf_gate.sh, which also compares the
#      deterministic verify/cache fields exactly (ci/perf_compare.py).
#
# Usage: ci/par_gate.sh [build-dir] [tsan-build-dir]
#        (defaults: build, build-tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
TSAN_BUILD="${2:-build-tsan}"
JOBS="${PAR_GATE_JOBS:-2}"

echo "== par gate: TSan build (${TSAN_BUILD}) =="
cmake -S . -B "${TSAN_BUILD}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGRAPHITI_SANITIZE=thread > /dev/null
cmake --build "${TSAN_BUILD}" --target test_parallel \
    test_state_encoding -j "${JOBS}"

echo "== par gate: TSan run (ctest -L par) =="
ctest --test-dir "${TSAN_BUILD}" -L par --output-on-failure

echo "== par gate: thread-scaling probe =="
BENCH="${BUILD}/bench/bench_refine_checker"
if [ ! -x "${BENCH}" ]; then
    echo "par gate: ${BENCH} not built (configure+build ${BUILD} first)"
    exit 2
fi
SCALING="$(mktemp)"
trap 'rm -f "${SCALING}"' EXIT
"${BENCH}" --benchmark_filter='BM_ThreadScaling/[14]/real_time' \
    --benchmark_out="${SCALING}" --benchmark_out_format=json \
    > /dev/null

NPROC="$(nproc)"
python3 - "${SCALING}" "${NPROC}" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
nproc = int(sys.argv[2])

runs = {}
for b in doc.get("benchmarks", []):
    name = b.get("name", "")
    if not name.startswith("BM_ThreadScaling/"):
        continue
    threads = int(name.split("/")[1])
    runs[threads] = b

for threads in (1, 4):
    if threads not in runs:
        sys.exit(f"par gate: BM_ThreadScaling/{threads} missing "
                 "from benchmark output")

states1 = runs[1].get("verify_states")
states4 = runs[4].get("verify_states")
if states1 != states4:
    sys.exit("par gate: FAIL: verify_states differ across thread "
             f"counts ({states1} vs {states4}) — verdicts must be "
             "thread-count independent")
print(f"par gate: verify_states identical at 1 and 4 threads "
      f"({int(states1)})")

t1 = runs[1]["real_time"]
t4 = runs[4]["real_time"]
speedup = t1 / t4 if t4 > 0 else 0.0
print(f"par gate: threads=1 {t1:.1f}ms, threads=4 {t4:.1f}ms, "
      f"speedup {speedup:.2f}x (nproc={nproc})")
if nproc >= 4:
    if speedup < 2.0:
        sys.exit("par gate: FAIL: expected >= 2x speedup at 4 threads "
                 f"on a {nproc}-thread machine, got {speedup:.2f}x")
    print("par gate: scaling OK (>= 2x at 4 threads)")
else:
    print(f"par gate: WARN only: {nproc} hardware thread(s) — the 2x "
          "requirement needs >= 4; skipping enforcement")
PY

echo "== par gate: perf gate =="
ci/perf_gate.sh "${BUILD}"

echo "par gate: OK"
