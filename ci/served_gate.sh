#!/usr/bin/env bash
# Compile-service gate (docs/service.md):
#
#   1. Served tests: build and run the `served`-labelled suite —
#      framing, admission/fair-share policy, the crash-safe verdict
#      store, and the daemon byte-identity / shed-honesty / restart
#      contracts, in-process.
#   2. Daemon smoke: boot graphiti-served on a temporary socket with a
#      persistent verdict store, drive it with graphiti-client (ping,
#      then a governed verify of a real benchmark), and require an ok
#      response.
#   3. Crash recovery: kill -9 the daemon, restart it on the same
#      store directory, and require the pre-kill verdict to come back
#      as a verify_cache_hit — the write-through store must survive
#      an unclean death, not just a polite shutdown.
#   4. Observability probe (docs/service_observability.md): while the
#      smoke daemon is up, require live --stats and --health answers
#      (per-verb windows, lane liveness), then SIGUSR1 and require the
#      flight-recorder JSON to appear with completed-job records.
#      The smoke daemon also runs with --expose 0; after the verify
#      job, an HTTP scrape of the bound port must serve the metricsz
#      document with the contract families
#      (docs/verification_observability.md).
#   5. Soak: a bounded bench_served run with --misbehave — concurrent
#      clients, a deterministic slice of them hostile (half-written
#      frames, mid-job disconnects, deadline-zero floods, junk) — and
#      require every healthy request answered.
#   6. Isolate smoke (docs/service.md, "Process isolation"): boot the
#      daemon with --isolate and a targeted GRAPHITI_CRASH_PLAN, kill
#      one worker mid-compile via its job id, and require a structured
#      error with a post-mortem artifact, an ok follow-up job on the
#      same daemon, and a health report showing the respawn.
#   7. Crash-storm soak: bench_served --isolate --crash-rate — workers
#      die at a seeded rate while every request still gets a
#      structured response (ok, error, or an honest shed), never
#      silence.
#   8. Sanitizer leg: the served-labelled suite (sandbox tests
#      included) runs clean under ASan + UBSan in a separate build
#      tree. Skip with SERVED_GATE_ASAN=0.
#
# Usage: ci/served_gate.sh [build-dir]    (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="${SERVED_GATE_JOBS:-2}"
SOAK_CLIENTS="${SERVED_GATE_CLIENTS:-4}"
SOAK_REQUESTS="${SERVED_GATE_REQUESTS:-10}"

WORK="$(mktemp -d)"
SOCKET="${WORK}/served.sock"
STORE="${WORK}/verdicts"
DAEMON_LOG="${WORK}/daemon.log"
FLIGHT="${WORK}/flight.json"
DAEMON_PID=""

cleanup() {
    [ -n "${DAEMON_PID}" ] && kill -9 "${DAEMON_PID}" 2> /dev/null || true
    rm -rf "${WORK}"
}
trap cleanup EXIT

wait_for_listen() {
    # The daemon prints its listening line before serving; poll for it
    # so the client never races the bind.
    for _ in $(seq 1 100); do
        grep -q "listening on" "${DAEMON_LOG}" 2> /dev/null && return 0
        kill -0 "$1" 2> /dev/null || {
            echo "served gate: daemon died during startup:"
            cat "${DAEMON_LOG}"
            exit 1
        }
        sleep 0.1
    done
    echo "served gate: daemon never started listening:"
    cat "${DAEMON_LOG}"
    exit 1
}

echo "== served gate: build =="
cmake --build "${BUILD}" -j "${JOBS}" \
    --target test_served test_sandbox bench_served graphiti-served \
    graphiti-client

echo "== served gate: tests (ctest -L served) =="
ctest --test-dir "${BUILD}" -L served --output-on-failure

echo "== served gate: daemon smoke =="
"${BUILD}/tools/graphiti-served" --socket "${SOCKET}" --workers 2 \
    --store "${STORE}" --flight "${FLIGHT}" --expose 0 \
    > "${DAEMON_LOG}" 2>&1 &
DAEMON_PID=$!
wait_for_listen "${DAEMON_PID}"

"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" ping > /dev/null
# Tight budgets (the test-suite shape): the gate checks the service
# plumbing, not assurance depth — bicg at full budgets takes minutes.
BENCHMARK="bicg"
TIGHT="--max-states 800 --partial-states 300 --input-budget 1 \
    --trace-walks 2"
"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" verify \
    --benchmark "${BENCHMARK}" ${TIGHT} > "${WORK}/verify1.json"
grep -q '"status": "ok"' "${WORK}/verify1.json" || {
    echo "served gate: verify of ${BENCHMARK} did not return ok:"
    cat "${WORK}/verify1.json"
    exit 1
}
echo "served gate: smoke OK (ping + verify ${BENCHMARK})"

echo "== served gate: live stats/health probe =="
"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" --stats \
    > "${WORK}/stats.json"
"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" --health \
    > "${WORK}/health.json"
python3 - "${WORK}/stats.json" "${WORK}/health.json" <<'PY'
import json, sys

stats = json.load(open(sys.argv[1]))
assert stats["connections"]["accepted"] >= 1, "no connections counted"
assert stats["scheduler"]["completed"] >= 2, "ping+verify not counted"
verbs = stats["verbs"]
for verb in ("ping", "verify"):
    assert verbs[verb]["ok"] >= 1, verb + " verb not accounted"
    assert "queue_wait" in verbs[verb] and "execute" in verbs[verb], \
        verb + " verb missing its split latency windows"

health = json.load(open(sys.argv[2]))
assert health["status"] == "ok", "daemon not healthy: " + str(health)
sched = health["scheduler"]
assert sched["workers_alive"] == sched["workers_configured"] == 2, \
    "worker lanes not all alive: " + str(sched)
assert health["store"]["persistent"], "store should be persistent"
print("served gate: live stats/health answers are well-formed")
PY

echo "== served gate: metrics scrape (--expose) =="
# The startup banner prints the ephemeral exposition port:
#   ... (metrics on http://127.0.0.1:PORT/metricsz)
EXPOSE_PORT="$(sed -n \
    's#.*metrics on http://127\.0\.0\.1:\([0-9]*\)/metricsz.*#\1#p' \
    "${DAEMON_LOG}" | head -1)"
[ -n "${EXPOSE_PORT}" ] || {
    echo "served gate: FAIL: no exposition port in the daemon banner:"
    cat "${DAEMON_LOG}"
    exit 1
}
python3 - "${EXPOSE_PORT}" <<'PY'
import sys
import urllib.request

port = sys.argv[1]
with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metricsz", timeout=10) as response:
    body = response.read().decode()

lines = {ln.split(" ")[0]: ln for ln in body.splitlines()
         if ln and not ln.startswith("#")}
# The scrape contract: both alias families present, and the states
# counter moved after the verify job that just completed.
for family in ("graphiti_verify_states_total",
               "graphiti_verify_peak_bytes",
               "graphiti_jobs_completed_total",
               "graphiti_expose_scrapes_total"):
    assert family in lines, family + " missing from scrape:\n" + body
states = float(lines["graphiti_verify_states_total"].split(" ")[1])
completed = float(lines["graphiti_jobs_completed_total"].split(" ")[1])
assert completed >= 2, "ping+verify not counted: " + str(completed)
print("served gate: scrape OK (states=%g, completed=%g)"
      % (states, completed))
PY

echo "== served gate: SIGUSR1 flight dump =="
kill -USR1 "${DAEMON_PID}"
for _ in $(seq 1 50); do
    [ -s "${FLIGHT}" ] && break
    sleep 0.1
done
[ -s "${FLIGHT}" ] || {
    echo "served gate: FAIL: no flight dump after SIGUSR1"
    cat "${DAEMON_LOG}"
    exit 1
}
python3 - "${FLIGHT}" <<'PY'
import json, sys

flight = json.load(open(sys.argv[1]))
records = flight["records"]
assert isinstance(records, list) and records, "empty flight ring"
jobs = [r for r in records if r["kind"] == "job"]
assert jobs, "no completed-job records in the flight ring"
assert all("job_id" in r and "status" in r for r in jobs), \
    "job records missing correlation id or status"
print("served gate: flight dump has %d records (%d jobs)"
      % (len(records), len(jobs)))
PY

echo "== served gate: kill -9 / restart cache recovery =="
kill -9 "${DAEMON_PID}"
wait "${DAEMON_PID}" 2> /dev/null || true
DAEMON_PID=""
rm -f "${SOCKET}"

"${BUILD}/tools/graphiti-served" --socket "${SOCKET}" --workers 2 \
    --store "${STORE}" > "${DAEMON_LOG}" 2>&1 &
DAEMON_PID=$!
wait_for_listen "${DAEMON_PID}"

"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" verify \
    --benchmark "${BENCHMARK}" ${TIGHT} > "${WORK}/verify2.json"
grep -q '"status": "ok"' "${WORK}/verify2.json" || {
    echo "served gate: post-restart verify did not return ok:"
    cat "${WORK}/verify2.json"
    exit 1
}
grep -q '"verify_cache_hit": true' "${WORK}/verify2.json" || {
    echo "served gate: FAIL: pre-kill verdict was not served from the"
    echo "store after kill -9 + restart — persistence is not"
    echo "crash-safe:"
    cat "${WORK}/verify2.json"
    exit 1
}
python3 - "${WORK}/verify1.json" "${WORK}/verify2.json" <<'PY'
import json, sys

before = json.load(open(sys.argv[1]))["result"]["verdict"]
after = json.load(open(sys.argv[2]))["result"]["verdict"]
if before != after:
    sys.exit("served gate: FAIL: recovered verdict differs from the "
             "one committed before the kill")
print("served gate: recovered verdict byte-identical to the "
      "pre-kill one")
PY
kill "${DAEMON_PID}" 2> /dev/null || true
wait "${DAEMON_PID}" 2> /dev/null || true
DAEMON_PID=""

echo "== served gate: misbehaving-client soak =="
"${BUILD}/bench/bench_served" --clients "${SOAK_CLIENTS}" \
    --requests "${SOAK_REQUESTS}" --workers 2 --queue 4 --misbehave \
    --json "${WORK}/soak.json"

echo "== served gate: isolate smoke (crash containment) =="
# Boot with sandboxed workers and a targeted crash plan: only the job
# whose id starts with "doom" is killed (SIGSEGV mid-compile); every
# other job must be untouched by the plan.
GRAPHITI_CRASH_PLAN="seed=1,kill=doom:segv" \
    "${BUILD}/tools/graphiti-served" --socket "${SOCKET}" \
    --isolate 2 > "${DAEMON_LOG}" 2>&1 &
DAEMON_PID=$!
wait_for_listen "${DAEMON_PID}"

# The doomed job: the worker dies, the daemon must answer with a
# structured error carrying the post-mortem artifact (client exits 1
# on an error response — that is the expected outcome here).
"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" verify \
    --job-id doom-1 --benchmark "${BENCHMARK}" ${TIGHT} \
    > "${WORK}/doom.json" || true
python3 - "${WORK}/doom.json" <<'PY'
import json, sys

doom = json.load(open(sys.argv[1]))
assert doom["status"] == "error", \
    "doomed job should error, got: " + str(doom)
assert "crash" in doom.get("error", "").lower() or \
       "signal" in doom.get("error", ""), \
    "error should name the crash: " + doom.get("error", "")
artifact = json.loads(doom["artifact"])
assert artifact["exit"]["class"] == "crash", \
    "artifact should classify the death: " + str(artifact["exit"])
assert "rlimits" in artifact, "artifact should record the jail"
print("served gate: crashed worker produced a structured error "
      "with a post-mortem artifact")
PY

# The daemon must shrug the death off: an untargeted follow-up job on
# the same daemon answers ok, and health shows the respawned worker.
"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" verify \
    --benchmark "${BENCHMARK}" ${TIGHT} > "${WORK}/after-doom.json"
grep -q '"status": "ok"' "${WORK}/after-doom.json" || {
    echo "served gate: FAIL: daemon did not answer ok after a worker"
    echo "crash:"
    cat "${WORK}/after-doom.json"
    exit 1
}
"${BUILD}/tools/graphiti-client" --socket "${SOCKET}" --health \
    > "${WORK}/health-isolate.json"
python3 - "${WORK}/health-isolate.json" <<'PY'
import json, sys

health = json.load(open(sys.argv[1]))
pool = health["scheduler"]["worker_pool"]
assert pool["live"] == pool["configured"] == 2, \
    "pool not back to full strength: " + str(pool)
assert pool["respawned"] >= 1, "no respawn recorded: " + str(pool)
assert pool["crashes_by_class"].get("crash", 0) >= 1, \
    "crash not classified: " + str(pool)
assert health["status"] == "ok", \
    "daemon should be healthy after the respawn: " + str(health)
print("served gate: isolate health OK (respawned=%d, crashes=%s)"
      % (pool["respawned"], pool["crashes_by_class"]))
PY
kill "${DAEMON_PID}" 2> /dev/null || true
wait "${DAEMON_PID}" 2> /dev/null || true
DAEMON_PID=""
rm -f "${SOCKET}"

echo "== served gate: crash-storm soak (--isolate --crash-rate) =="
"${BUILD}/bench/bench_served" --clients "${SOAK_CLIENTS}" \
    --requests "${SOAK_REQUESTS}" --isolate 2 --crash-rate 0.25 \
    --json "${WORK}/storm.json"

if [ "${SERVED_GATE_ASAN:-1}" = "1" ]; then
    echo "== served gate: sanitizer leg (ASan + UBSan) =="
    cmake -B "${BUILD}-asan" -S . -DGRAPHITI_SANITIZE=address,undefined
    cmake --build "${BUILD}-asan" -j "${JOBS}" \
        --target test_served test_sandbox
    (cd "${BUILD}-asan" && ctest -L served --output-on-failure)
else
    echo "== served gate: sanitizer leg skipped (SERVED_GATE_ASAN=0) =="
fi

echo "served gate: OK"
